#include "core/aggregation_grid.hpp"

#include <algorithm>

namespace spio {

AggregationGrid::AggregationGrid(const Box3& region, const Vec3i& dims)
    : dims_(dims) {
  SPIO_CHECK(!region.is_empty(), ConfigError,
             "aggregation grid region must be non-empty");
  SPIO_CHECK(dims.x >= 1 && dims.y >= 1 && dims.z >= 1, ConfigError,
             "aggregation grid dims must be >= 1, got " << dims);
  for (int a = 0; a < 3; ++a) {
    edges_[a].resize(static_cast<std::size_t>(dims_[a]) + 1);
    const double lo = region.lo[a];
    const double extent = region.hi[a] - region.lo[a];
    for (std::int64_t i = 0; i <= dims_[a]; ++i)
      edges_[a][static_cast<std::size_t>(i)] =
          lo + extent * (static_cast<double>(i) / static_cast<double>(dims_[a]));
    // `lo + extent * 1.0` can land one ulp away from region.hi; pin the
    // outer edges exactly so boundary particles stay inside the grid.
    edges_[a].front() = region.lo[a];
    edges_[a].back() = region.hi[a];
  }
  compute_inv_cells();
}

AggregationGrid AggregationGrid::aligned(const PatchDecomposition& decomp,
                                         const PartitionFactor& factor) {
  SPIO_CHECK(factor.valid(), ConfigError,
             "invalid partition factor " << factor.to_string());
  AggregationGrid g;
  const Vec3i pgrid = decomp.grid();
  const int f[3] = {factor.px, factor.py, factor.pz};
  for (int a = 0; a < 3; ++a) {
    const std::int64_t n = (pgrid[a] + f[a] - 1) / f[a];  // ceil
    g.dims_[a] = n;
    g.edges_[a].reserve(static_cast<std::size_t>(n) + 1);
    // Partition boundaries at every factor-th patch boundary; the last
    // boundary is always the domain face.
    const Vec3d psize = decomp.patch_size();
    for (std::int64_t i = 0; i < n; ++i)
      g.edges_[a].push_back(decomp.domain().lo[a] +
                            psize[a] * static_cast<double>(i * f[a]));
    g.edges_[a].push_back(decomp.domain().hi[a]);
  }
  g.compute_inv_cells();
  return g;
}

Box3 AggregationGrid::region() const {
  return Box3({edges_[0].front(), edges_[1].front(), edges_[2].front()},
              {edges_[0].back(), edges_[1].back(), edges_[2].back()});
}

int AggregationGrid::partition_of_point(const Vec3d& p) const {
  Vec3i c;
  for (int a = 0; a < 3; ++a) {
    // Index of the last edge <= p: partition i covers [edge[i], edge[i+1]).
    const auto& e = edges_[a];
    const auto it = std::upper_bound(e.begin(), e.end(), p[a]);
    std::int64_t i = static_cast<std::int64_t>(it - e.begin()) - 1;
    c[a] = std::clamp<std::int64_t>(i, 0, dims_[a] - 1);
  }
  return index_of(c);
}

Box3 AggregationGrid::partition_box(int idx) const {
  const Vec3i c = coord_of(idx);
  Box3 b;
  for (int a = 0; a < 3; ++a) {
    b.lo[a] = edges_[a][static_cast<std::size_t>(c[a])];
    b.hi[a] = edges_[a][static_cast<std::size_t>(c[a]) + 1];
  }
  return b;
}

Vec3i AggregationGrid::coord_of(int idx) const {
  SPIO_EXPECTS(idx >= 0 && idx < partition_count());
  const std::int64_t i = idx;
  return {i % dims_.x, (i / dims_.x) % dims_.y, i / (dims_.x * dims_.y)};
}

int AggregationGrid::index_of(const Vec3i& c) const {
  SPIO_EXPECTS(c.x >= 0 && c.x < dims_.x);
  SPIO_EXPECTS(c.y >= 0 && c.y < dims_.y);
  SPIO_EXPECTS(c.z >= 0 && c.z < dims_.z);
  return static_cast<int>(c.x + dims_.x * (c.y + dims_.y * c.z));
}

bool AggregationGrid::is_aligned_with(const PatchDecomposition& decomp) const {
  for (int r = 0; r < decomp.rank_count(); ++r) {
    const Box3 patch = decomp.patch(r);
    const int p = partition_of_point(patch.center());
    // Allow a tolerance of a relative epsilon: aligned edges are computed
    // from the same patch arithmetic, so exact containment holds, but a
    // general grid that merely happens to align may carry rounding noise.
    const Box3 part = partition_box(p);
    const double eps = 1e-9 * (part.hi - part.lo).max_component();
    if (patch.lo.x < part.lo.x - eps || patch.hi.x > part.hi.x + eps ||
        patch.lo.y < part.lo.y - eps || patch.hi.y > part.hi.y + eps ||
        patch.lo.z < part.lo.z - eps || patch.hi.z > part.hi.z + eps)
      return false;
  }
  return true;
}

std::vector<int> select_aggregators_uniform(int nranks, int nparts) {
  SPIO_CHECK(nparts >= 1 && nparts <= nranks, ConfigError,
             "need 1 <= partitions (" << nparts << ") <= ranks (" << nranks
                                      << ")");
  std::vector<int> aggs(static_cast<std::size_t>(nparts));
  for (int i = 0; i < nparts; ++i)
    aggs[static_cast<std::size_t>(i)] =
        static_cast<int>((static_cast<std::int64_t>(i) * nranks) / nparts);
  return aggs;
}

std::vector<int> select_aggregators_packed(int nranks, int nparts) {
  SPIO_CHECK(nparts >= 1 && nparts <= nranks, ConfigError,
             "need 1 <= partitions (" << nparts << ") <= ranks (" << nranks
                                      << ")");
  std::vector<int> aggs(static_cast<std::size_t>(nparts));
  for (int i = 0; i < nparts; ++i) aggs[static_cast<std::size_t>(i)] = i;
  return aggs;
}

}  // namespace spio
