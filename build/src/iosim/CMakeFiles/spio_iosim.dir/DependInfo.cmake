
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iosim/event_sim.cpp" "src/iosim/CMakeFiles/spio_iosim.dir/event_sim.cpp.o" "gcc" "src/iosim/CMakeFiles/spio_iosim.dir/event_sim.cpp.o.d"
  "/root/repo/src/iosim/machine_profile.cpp" "src/iosim/CMakeFiles/spio_iosim.dir/machine_profile.cpp.o" "gcc" "src/iosim/CMakeFiles/spio_iosim.dir/machine_profile.cpp.o.d"
  "/root/repo/src/iosim/read_model.cpp" "src/iosim/CMakeFiles/spio_iosim.dir/read_model.cpp.o" "gcc" "src/iosim/CMakeFiles/spio_iosim.dir/read_model.cpp.o.d"
  "/root/repo/src/iosim/write_model.cpp" "src/iosim/CMakeFiles/spio_iosim.dir/write_model.cpp.o" "gcc" "src/iosim/CMakeFiles/spio_iosim.dir/write_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/spio_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spio_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
