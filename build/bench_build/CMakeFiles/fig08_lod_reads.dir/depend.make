# Empty dependencies file for fig08_lod_reads.
# This may be replaced when dependencies are built.
