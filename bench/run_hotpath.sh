#!/usr/bin/env sh
# Regenerate BENCH_hotpath.json, the committed machine-readable perf
# baseline for the write pipeline's hot paths (binning, exchange, LOD
# reorder, CRC, file write; micro kernels vs their pre-optimization
# references).
#
# Usage: bench/run_hotpath.sh [build-dir] [reps]
#
# Run from the repository root on an otherwise idle machine. The JSON is
# written to the repository root; commit it when refreshing the baseline.
#
# The 8-rank stage run also emits a Chrome trace which is structurally
# validated with `spio_trace --check` — a smoke test that the tracing
# subsystem survives a real pipeline run (see docs/OBSERVABILITY.md).
set -eu

BUILD_DIR="${1:-build}"
REPS="${2:-5}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/tools/spio_bench"
TRACE_TOOL="$REPO_ROOT/$BUILD_DIR/tools/spio_trace"

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found; build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target spio_bench spio_trace" >&2
  exit 1
fi

TRACE_JSON="$REPO_ROOT/$BUILD_DIR/hotpath_trace.json"
"$BENCH" --hotpath --reps "$REPS" --json "$REPO_ROOT/BENCH_hotpath.json" \
  --trace "$TRACE_JSON"

if [ -x "$TRACE_TOOL" ]; then
  "$TRACE_TOOL" --check "$TRACE_JSON"
else
  echo "warning: $TRACE_TOOL not built; skipping trace validation" >&2
fi
