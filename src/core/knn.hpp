#pragma once

/// \file knn.hpp
/// k-nearest-neighbour queries over a dataset — one of the region-based
/// analysis tasks the paper's format exists to serve (§3: "nearest
/// neighbour search, vector field integration, stencil operations...").
/// The spatial metadata drives an expanding-ball search: only files whose
/// bounding boxes can still contain a closer neighbour are read.

#include <vector>

#include "core/reader.hpp"

namespace spio {

struct KnnResult {
  /// The k neighbours' full records, sorted by ascending distance.
  ParticleBuffer particles;
  /// Ascending distances, parallel to `particles`.
  std::vector<double> distances;
};

/// Find the `k` particles nearest to `query` (fewer if the dataset holds
/// fewer). Files are visited in order of their bounding boxes' minimum
/// distance to the query point and the search stops as soon as the next
/// file cannot improve the current k-th distance — typically touching a
/// small handful of files. `stats` reports the file I/O performed.
KnnResult k_nearest(const Dataset& dataset, const Vec3d& query, int k,
                    ReadStats* stats = nullptr);

/// Minimum distance from `p` to box `b` (0 when inside).
double distance_to_box(const Vec3d& p, const Box3& b);

}  // namespace spio
