/// \file fig05_weak_scaling.cpp
/// Figure 5: parallel-write weak scaling on Mira and Theta for 32K and
/// 64K particles per core, 512 -> 262,144 ranks, sweeping the aggregation
/// partition factor against the file-per-process, IOR-shared and PHDF5
/// baselines. Throughputs come from the calibrated machine cost model
/// (see src/iosim/); the paper's shapes — which configuration wins, where
/// FPP saturates, where the crossover falls — are the reproduction
/// target, not the absolute GB/s.

#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "iosim/write_model.hpp"
#include "util/table.hpp"

using namespace spio;
using namespace spio::iosim;

namespace {

const std::vector<int> kProcs = {512,   1024,  2048,  4096,   8192,
                                 16384, 32768, 65536, 131072, 262144};

void panel(const MachineProfile& machine, std::uint64_t ppc,
           const std::vector<PartitionFactor>& factors) {
  Table t("Figure 5: " + machine.name + ", " +
              std::to_string(ppc / 1024) + "K particles/core — write "
              "throughput (GB/s)",
          [&] {
            std::vector<std::string> h{"procs"};
            for (const auto& f : factors) h.push_back(f.to_string());
            h.insert(h.end(), {"IOR-FPP", "IOR-shared", "PHDF5"});
            return h;
          }());

  for (const int n : kProcs) {
    auto& row = t.row();
    row.add_int(n);
    for (const auto& f : factors) {
      WriteCase c;
      c.nprocs = n;
      c.particles_per_proc = ppc;
      c.scheme = f == PartitionFactor{1, 1, 1} ? WriteScheme::kFilePerProcess
                                               : WriteScheme::kSpio;
      c.factor = f;
      row.add_double(model_write(machine, c).throughput_gbs(), 2);
    }
    for (const WriteScheme s : {WriteScheme::kFilePerProcess,
                                WriteScheme::kIorShared, WriteScheme::kPhdf5}) {
      WriteCase c;
      c.nprocs = n;
      c.particles_per_proc = ppc;
      c.scheme = s;
      row.add_double(model_write(machine, c).throughput_gbs(), 2);
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  spio::bench::init_observability();
  // The paper sweeps the full factor list on Theta and a reduced list on
  // Mira ("we reduced the number of experiments performed on Mira").
  const std::vector<PartitionFactor> mira_factors = {
      {1, 1, 1}, {2, 2, 2}, {2, 2, 4}, {2, 4, 4}};
  const std::vector<PartitionFactor> theta_factors = {
      {1, 1, 1}, {1, 1, 2}, {1, 2, 2}, {2, 2, 2},
      {2, 2, 4}, {2, 4, 4}, {4, 4, 4}};

  for (const std::uint64_t ppc : {32768ull, 65536ull}) {
    panel(MachineProfile::mira(), ppc, mira_factors);
  }
  for (const std::uint64_t ppc : {32768ull, 65536ull}) {
    panel(MachineProfile::theta(), ppc, theta_factors);
  }

  std::cout << "paper reference points: Mira ~98 GB/s at 262,144 ranks "
               "(32K ppc, large factors);\nTheta 216/243 GB/s for (1,2,2) "
               "vs 83/160 GB/s FPP at 262,144 ranks;\n(1,2,2) overtakes "
               "FPP at 65,536 ranks on Theta.\n";
  return 0;
}
