file(REMOVE_RECURSE
  "../bench/fig09_lod_quality"
  "../bench/fig09_lod_quality.pdb"
  "CMakeFiles/fig09_lod_quality.dir/fig09_lod_quality.cpp.o"
  "CMakeFiles/fig09_lod_quality.dir/fig09_lod_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lod_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
