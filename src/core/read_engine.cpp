#include "core/read_engine.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

/// Default LRU budget when `SPIO_READ_CACHE` is unset: enough for the
/// working set of a laptop-scale analysis session, small next to the
/// datasets the paper targets.
constexpr std::uint64_t kDefaultCacheBytes = 256ull << 20;

int default_concurrency() {
  if (const char* env = std::getenv("SPIO_READ_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 1;
  return hw > 16 ? 16 : static_cast<int>(hw);
}

std::uint64_t default_cache_budget() {
  if (const char* env = std::getenv("SPIO_READ_CACHE")) {
    std::uint64_t bytes = 0;
    if (read_detail::parse_size_bytes(env, &bytes)) return bytes;
  }
  return kDefaultCacheBytes;
}

void publish_counter(const char* name, std::uint64_t delta) {
  if (delta == 0 || !obs::enabled()) return;
  obs::MetricsRegistry::global().counter(name).add(delta);
}

}  // namespace

ReadEngine& ReadEngine::instance() {
  static ReadEngine engine;
  return engine;
}

ReadEngine::ReadEngine()
    : budget_(default_cache_budget()),
      pool_(std::make_unique<ThreadPool>(default_concurrency())) {}

FileSig ReadEngine::probe(const std::filesystem::path& path) const {
  FileSig sig;
  sig.size = file_size_bytes(path);  // throws IoError when absent
  if (cache_enabled()) {
    std::error_code ec;
    const auto t = std::filesystem::last_write_time(path, ec);
    if (!ec) sig.mtime_ns = static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t.time_since_epoch())
            .count());
  }
  return sig;
}

ReadEngine::Fetched ReadEngine::fetch(const std::filesystem::path& path,
                                      std::uint64_t prefix_bytes,
                                      const FileSig& sig) {
  if (!cache_enabled() || prefix_bytes == 0) {
    Fetched f;
    f.owned = read_file_range(path, 0, prefix_bytes);
    f.outcome = CacheOutcome::kBypass;
    return f;
  }

  const std::string key =
      path.string() + '\1' + std::to_string(prefix_bytes);
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& e = *it->second;
      if (e.sig.size == sig.size && e.sig.mtime_ns == sig.mtime_ns) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        Fetched f;
        f.shared = e.data;
        f.outcome = CacheOutcome::kHit;
        publish_counter("reader.cache.hits", 1);
        return f;
      }
      // Stale entry (the file was rewritten in place): drop it and fall
      // through to a fresh read.
      evicted_delta += e.data->size();
      evict_locked(it->second);
    }
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);

  // One-pass read into uninitialized storage (no vector zero-fill).
  auto block = std::make_shared<ByteBlock>(
      static_cast<std::size_t>(prefix_bytes));
  read_file_range_into(path, 0, {block->data(), block->size()});
  std::shared_ptr<const ByteBlock> data = std::move(block);
  evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    ++stats_.misses;
    if (data->size() <= budget_) {
      const auto raced = map_.find(key);  // a concurrent miss beat us
      if (raced != map_.end()) {
        evicted_delta += raced->second->data->size();
        evict_locked(raced->second);
      }
      const std::uint64_t before = stats_.bytes_evicted;
      shrink_to_locked(budget_ - data->size());
      evicted_delta += stats_.bytes_evicted - before;
      lru_.push_front(Entry{key, data, sig});
      map_.emplace(key, lru_.begin());
      bytes_held_ += data->size();
    }
  }
  publish_counter("reader.cache.misses", 1);
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
  Fetched f;
  f.shared = std::move(data);
  f.outcome = CacheOutcome::kMiss;
  return f;
}

ThreadPool& ReadEngine::pool() { return *pool_; }

int ReadEngine::concurrency() const { return pool_->concurrency(); }

bool ReadEngine::cache_enabled() const {
  std::lock_guard lk(mu_);
  return budget_ > 0;
}

std::uint64_t ReadEngine::cache_budget() const {
  std::lock_guard lk(mu_);
  return budget_;
}

ReadCacheStats ReadEngine::cache_stats() const {
  std::lock_guard lk(mu_);
  ReadCacheStats s = stats_;
  s.bytes_held = bytes_held_;
  s.entries = map_.size();
  return s;
}

void ReadEngine::clear_cache() {
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    const std::uint64_t before = stats_.bytes_evicted;
    shrink_to_locked(0);
    evicted_delta = stats_.bytes_evicted - before;
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
}

void ReadEngine::set_cache_budget(std::uint64_t bytes) {
  std::uint64_t evicted_delta = 0;
  {
    std::lock_guard lk(mu_);
    budget_ = bytes;
    const std::uint64_t before = stats_.bytes_evicted;
    shrink_to_locked(budget_);
    evicted_delta = stats_.bytes_evicted - before;
  }
  publish_counter("reader.cache.bytes_evicted", evicted_delta);
}

void ReadEngine::reset_cache_stats() {
  std::lock_guard lk(mu_);
  stats_ = ReadCacheStats{};
}

void ReadEngine::set_concurrency(int threads) {
  pool_ = std::make_unique<ThreadPool>(threads);
}

void ReadEngine::evict_locked(LruList::iterator it) {
  bytes_held_ -= it->data->size();
  stats_.bytes_evicted += it->data->size();
  ++stats_.evictions;
  map_.erase(it->key);
  lru_.erase(it);
}

void ReadEngine::shrink_to_locked(std::uint64_t target) {
  while (bytes_held_ > target && !lru_.empty())
    evict_locked(std::prev(lru_.end()));
}

namespace read_detail {

bool parse_size_bytes(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::uint64_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  *out = static_cast<std::uint64_t>(v) * mult;
  return true;
}

namespace {

constexpr std::size_t kNoRun = static_cast<std::size_t>(-1);

/// A ParticleBuffer holding a copy of `bytes` — the reference oracles
/// run the exact retained per-particle loops, which are written against
/// the buffer API.
ParticleBuffer materialize(std::span<const std::byte> bytes,
                           const Schema& schema) {
  ParticleBuffer buf(schema);
  buf.append_bytes(bytes);
  return buf;
}

/// Per-filter state with the component's byte offset and element type
/// hoisted out of the record loop.
struct HoistedRange {
  std::size_t offset = 0;
  bool is_f64 = true;
  double lo = 0;
  double hi = 0;
};

std::vector<HoistedRange> hoist_filters(const Schema& schema,
                                        std::span<const RangeFilter> filters) {
  std::vector<HoistedRange> hoisted;
  hoisted.reserve(filters.size());
  for (const RangeFilter& rf : filters) {
    const FieldDesc& fd = schema.fields()[rf.field];
    HoistedRange h;
    h.is_f64 = fd.type == FieldType::kF64;
    h.offset = schema.offset(rf.field) +
               static_cast<std::size_t>(rf.component) *
                   field_type_size(fd.type);
    h.lo = rf.lo;
    h.hi = rf.hi;
    hoisted.push_back(h);
  }
  return hoisted;
}

inline bool position_in_box(const std::byte* rec, std::size_t pos_off,
                            const Box3& box) {
  double p[3];
  std::memcpy(p, rec + pos_off, sizeof p);
  // Exactly Box3::contains — half-open, NaN excluded.
  return p[0] >= box.lo.x && p[0] < box.hi.x && p[1] >= box.lo.y &&
         p[1] < box.hi.y && p[2] >= box.lo.z && p[2] < box.hi.z;
}

}  // namespace

std::uint64_t filter_box(std::span<const std::byte> bytes,
                         const Schema& schema, const Box3& box,
                         ParticleBuffer& out) {
  const std::size_t rec = schema.record_size();
  SPIO_EXPECTS(rec > 0 && bytes.size() % rec == 0);
  const std::size_t n = bytes.size() / rec;
  const std::size_t pos_off = schema.offset(0);
  const std::byte* base = bytes.data();
  std::uint64_t kept = 0;
  std::size_t run_start = kNoRun;
  // Single pass: a run is copied the moment it closes, so its source
  // bytes are still in L1/L2 from the position test that closed it.
  for (std::size_t i = 0; i < n; ++i) {
    if (position_in_box(base + i * rec, pos_off, box)) {
      if (run_start == kNoRun) run_start = i;
    } else if (run_start != kNoRun) {
      out.append_records(base + run_start * rec, i - run_start);
      kept += i - run_start;
      run_start = kNoRun;
    }
  }
  if (run_start != kNoRun) {
    out.append_records(base + run_start * rec, n - run_start);
    kept += n - run_start;
  }
  return kept;
}

std::uint64_t filter_box_reference(std::span<const std::byte> bytes,
                                   const Schema& schema, const Box3& box,
                                   ParticleBuffer& out) {
  const ParticleBuffer buf = materialize(bytes, schema);
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (box.contains(buf.position(i))) {
      out.append_from(buf, i);
      ++kept;
    }
  }
  return kept;
}

std::uint64_t filter_box_ranges(std::span<const std::byte> bytes,
                                const Schema& schema, const Box3& box,
                                std::span<const RangeFilter> filters,
                                ParticleBuffer& out) {
  const std::size_t rec = schema.record_size();
  SPIO_EXPECTS(rec > 0 && bytes.size() % rec == 0);
  const std::size_t n = bytes.size() / rec;
  const std::size_t pos_off = schema.offset(0);
  const std::vector<HoistedRange> hoisted = hoist_filters(schema, filters);
  const std::byte* base = bytes.data();
  std::uint64_t kept = 0;
  std::size_t run_start = kNoRun;
  for (std::size_t i = 0; i < n; ++i) {
    const std::byte* r = base + i * rec;
    bool keep = position_in_box(r, pos_off, box);
    for (std::size_t k = 0; keep && k < hoisted.size(); ++k) {
      const HoistedRange& h = hoisted[k];
      double v;
      if (h.is_f64) {
        std::memcpy(&v, r + h.offset, sizeof(double));
      } else {
        float f;
        std::memcpy(&f, r + h.offset, sizeof(float));
        v = static_cast<double>(f);
      }
      // NaN passes, exactly as in the reference predicate.
      if (v < h.lo || v > h.hi) keep = false;
    }
    if (keep) {
      if (run_start == kNoRun) run_start = i;
    } else if (run_start != kNoRun) {
      out.append_records(base + run_start * rec, i - run_start);
      kept += i - run_start;
      run_start = kNoRun;
    }
  }
  if (run_start != kNoRun) {
    out.append_records(base + run_start * rec, n - run_start);
    kept += n - run_start;
  }
  return kept;
}

std::uint64_t filter_box_ranges_reference(std::span<const std::byte> bytes,
                                          const Schema& schema,
                                          const Box3& box,
                                          std::span<const RangeFilter> filters,
                                          ParticleBuffer& out) {
  const ParticleBuffer buf = materialize(bytes, schema);
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (!box.contains(buf.position(i))) continue;
    bool keep = true;
    for (const RangeFilter& rf : filters) {
      const FieldDesc& fd = schema.fields()[rf.field];
      const double v =
          fd.type == FieldType::kF64
              ? buf.get_f64(i, rf.field, rf.component)
              : static_cast<double>(buf.get_f32(i, rf.field, rf.component));
      if (v < rf.lo || v > rf.hi) {
        keep = false;
        break;
      }
    }
    if (keep) {
      out.append_from(buf, i);
      ++kept;
    }
  }
  return kept;
}

void bin_by_owner(std::span<const std::byte> bytes, const Schema& schema,
                  const PatchDecomposition& decomp,
                  std::vector<ParticleBuffer>& outgoing) {
  SPIO_EXPECTS(outgoing.size() ==
               static_cast<std::size_t>(decomp.rank_count()));
  const std::size_t rec = schema.record_size();
  SPIO_EXPECTS(rec > 0 && bytes.size() % rec == 0);
  const std::size_t n = bytes.size() / rec;
  const std::size_t pos_off = schema.offset(0);
  const std::byte* base = bytes.data();

  // Pass 1: one point-location per record, folded into owner-tagged
  // runs; per-owner totals let pass 2 reserve each bin exactly.
  struct OwnerRun {
    std::size_t start;
    std::size_t len;
    int owner;
  };
  std::vector<OwnerRun> runs;
  std::vector<std::size_t> totals(outgoing.size(), 0);
  int cur_owner = -1;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double p[3];
    std::memcpy(p, base + i * rec + pos_off, sizeof p);
    const int owner = decomp.rank_of(decomp.cell_of({p[0], p[1], p[2]}));
    if (owner != cur_owner) {
      if (cur_owner >= 0 && i > run_start) {
        runs.push_back({run_start, i - run_start, cur_owner});
        totals[static_cast<std::size_t>(cur_owner)] += i - run_start;
      }
      cur_owner = owner;
      run_start = i;
    }
  }
  if (cur_owner >= 0 && n > run_start) {
    runs.push_back({run_start, n - run_start, cur_owner});
    totals[static_cast<std::size_t>(cur_owner)] += n - run_start;
  }

  // Pass 2: single memcpy per run into exactly-sized bins.
  for (std::size_t o = 0; o < outgoing.size(); ++o)
    if (totals[o] > 0) outgoing[o].reserve(outgoing[o].size() + totals[o]);
  for (const OwnerRun& r : runs)
    outgoing[static_cast<std::size_t>(r.owner)].append_records(
        base + r.start * rec, r.len);
}

void bin_by_owner_reference(std::span<const std::byte> bytes,
                            const Schema& schema,
                            const PatchDecomposition& decomp,
                            std::vector<ParticleBuffer>& outgoing) {
  SPIO_EXPECTS(outgoing.size() ==
               static_cast<std::size_t>(decomp.rank_count()));
  const ParticleBuffer buf = materialize(bytes, schema);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const int owner = decomp.rank_of(decomp.cell_of(buf.position(i)));
    outgoing[static_cast<std::size_t>(owner)].append_from(buf, i);
  }
}

}  // namespace read_detail

}  // namespace spio
