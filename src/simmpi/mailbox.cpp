#include "simmpi/mailbox.hpp"

#include <chrono>
#include <limits>

namespace simmpi {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
// Period at which blocked receivers re-check the abort flag. Aborts are a
// failure path only, so the latency here never affects a healthy run.
constexpr auto kAbortPoll = std::chrono::milliseconds(20);
}  // namespace

void Mailbox::deliver(Message&& m) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    const bool src_ok = (src == kAnySource) || (m.src == src);
    const bool tag_ok = (tag == kAnyTag) || (m.tag == tag);
    if (src_ok && tag_ok) return i;
  }
  return kNpos;
}

Message Mailbox::receive(int src, int tag, const std::atomic<bool>& abort) {
  std::unique_lock lk(mu_);
  for (;;) {
    const std::size_t i = find_match(src, tag);
    if (i != kNpos) {
      Message m = std::move(queue_[i]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return m;
    }
    if (abort.load(std::memory_order_relaxed)) throw Aborted();
    cv_.wait_for(lk, kAbortPoll);
  }
}

std::optional<Message> Mailbox::try_receive(int src, int tag) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return std::nullopt;
  Message m = std::move(queue_[i]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  return m;
}

bool Mailbox::probe(int src, int tag, int* out_src, int* out_tag,
                    std::size_t* out_bytes) {
  std::lock_guard lk(mu_);
  const std::size_t i = find_match(src, tag);
  if (i == kNpos) return false;
  if (out_src) *out_src = queue_[i].src;
  if (out_tag) *out_tag = queue_[i].tag;
  if (out_bytes) *out_bytes = queue_[i].payload.size();
  return true;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void Mailbox::interrupt() { cv_.notify_all(); }

}  // namespace simmpi
