#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "iosim/event_sim.hpp"
#include "util/rng.hpp"

namespace spio::iosim {
namespace {

struct Job {
  int server;
  double ready;
  double service;
};

/// Reference implementation: independent literal simulation of
/// work-conserving FIFO servers — each server serves its eligible jobs in
/// (ready, submission) order.
std::vector<double> reference_schedule(int servers,
                                       const std::vector<Job>& jobs) {
  std::vector<double> completion(jobs.size(), 0.0);
  for (int s = 0; s < servers; ++s) {
    // Jobs of this server in eligibility order (stable on ready time).
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (jobs[i].server == s) idx.push_back(i);
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return jobs[a].ready < jobs[b].ready;
    });
    double free_at = 0;
    for (const std::size_t i : idx) {
      free_at = std::max(free_at, jobs[i].ready) + jobs[i].service;
      completion[i] = free_at;
    }
  }
  return completion;
}

/// Randomized equivalence + invariants across many seeds.
class EventSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(EventSimProperty, MatchesReferenceAndInvariantsHold) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const int servers = 1 + static_cast<int>(rng.uniform_index(6));
  const int njobs = 1 + static_cast<int>(rng.uniform_index(200));

  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(njobs));
  EventSim sim(servers);
  for (int i = 0; i < njobs; ++i) {
    Job j;
    j.server = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(servers)));
    j.ready = rng.uniform(0.0, 10.0);
    j.service = rng.uniform(0.0, 2.0);
    jobs.push_back(j);
    sim.submit(j.server, j.ready, j.service);
  }
  sim.run();

  const auto expect = reference_schedule(servers, jobs);
  double busy_total = 0;
  for (int s = 0; s < servers; ++s) busy_total += sim.busy_time(s);

  double service_total = 0;
  double max_completion = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Exact agreement with the reference scheduler.
    ASSERT_DOUBLE_EQ(sim.completion(static_cast<int>(i)), expect[i])
        << "job " << i << " of seed " << GetParam();
    // A job never finishes before ready + service.
    EXPECT_GE(sim.completion(static_cast<int>(i)),
              jobs[i].ready + jobs[i].service - 1e-12);
    service_total += jobs[i].service;
    max_completion = std::max(max_completion, expect[i]);
  }
  // Makespan equals the latest completion; busy time conserves service.
  EXPECT_DOUBLE_EQ(sim.makespan(), max_completion);
  EXPECT_NEAR(busy_total, service_total, 1e-9);
  // Work conservation lower bound: makespan >= busiest server's load.
  for (int s = 0; s < servers; ++s)
    EXPECT_GE(sim.makespan() + 1e-12, sim.busy_time(s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSimProperty, ::testing::Range(0, 25),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace spio::iosim
