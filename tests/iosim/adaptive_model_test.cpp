#include <gtest/gtest.h>

#include "iosim/write_model.hpp"

namespace spio::iosim {
namespace {

AdaptiveCase fig11_case(double coverage, bool adaptive) {
  AdaptiveCase c;
  c.nprocs = 4096;
  c.total_particles = 4096ull * 32768;
  c.factor = {2, 2, 2};
  c.coverage = coverage;
  c.adaptive = adaptive;
  return c;
}

TEST(AdaptiveModel, IdenticalAtFullCoverage) {
  // With particles everywhere the adaptive and non-adaptive grids are the
  // same grid, so the model must agree.
  for (const auto& m : {MachineProfile::mira(), MachineProfile::theta()}) {
    const double a =
        model_adaptive_write(m, fig11_case(1.0, true)).total_seconds();
    const double na =
        model_adaptive_write(m, fig11_case(1.0, false)).total_seconds();
    EXPECT_NEAR(a, na, 1e-9) << m.name;
  }
}

TEST(AdaptiveModel, AdaptiveNeverSlower) {
  // Fig. 11: "adaptive aggregation yields improvement over non-adaptive"
  // on both machines, at every coverage level.
  for (const auto& m : {MachineProfile::mira(), MachineProfile::theta()}) {
    for (const double c : {1.0, 0.8, 0.6, 0.5, 0.4, 0.25, 0.125}) {
      const double a =
          model_adaptive_write(m, fig11_case(c, true)).total_seconds();
      const double na =
          model_adaptive_write(m, fig11_case(c, false)).total_seconds();
      EXPECT_LE(a, na + 1e-12) << m.name << " coverage " << c;
    }
  }
}

TEST(AdaptiveModel, MiraGapWidensAsCoverageShrinks) {
  // Fig. 11 (Mira): the adaptive advantage grows as the distribution
  // becomes more non-uniform (dedicated IONs sit idle under the
  // clustered non-adaptive aggregators).
  const auto mira = MachineProfile::mira();
  const double gap_50 =
      model_adaptive_write(mira, fig11_case(0.5, false)).total_seconds() -
      model_adaptive_write(mira, fig11_case(0.5, true)).total_seconds();
  const double gap_100 =
      model_adaptive_write(mira, fig11_case(1.0, false)).total_seconds() -
      model_adaptive_write(mira, fig11_case(1.0, true)).total_seconds();
  EXPECT_GT(gap_50, gap_100 + 0.5);
  // The non-adaptive scheme at 50% coverage leaves rank-mapped IONs
  // partly idle: a clear but bounded slowdown over adaptive.
  const double ratio =
      model_adaptive_write(mira, fig11_case(0.5, false)).total_seconds() /
      model_adaptive_write(mira, fig11_case(0.5, true)).total_seconds();
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.6);
}

TEST(AdaptiveModel, MiraAdaptiveTimeDecreasesWithCoverage) {
  // Fig. 11 (Mira): adaptive I/O time reduces as coverage shrinks
  // (fewer, larger files amortize per-file costs on GPFS).
  const auto mira = MachineProfile::mira();
  const double t100 =
      model_adaptive_write(mira, fig11_case(1.0, true)).total_seconds();
  const double t25 =
      model_adaptive_write(mira, fig11_case(0.25, true)).total_seconds();
  EXPECT_LT(t25, t100);
}

TEST(AdaptiveModel, ThetaPlacementMattersLittle) {
  // Fig. 11 (Theta): "placement of aggregators do not have significant
  // impact" — adaptive and non-adaptive stay within ~25% of each other.
  const auto theta = MachineProfile::theta();
  for (const double c : {1.0, 0.5, 0.25}) {
    const double a =
        model_adaptive_write(theta, fig11_case(c, true)).total_seconds();
    const double na =
        model_adaptive_write(theta, fig11_case(c, false)).total_seconds();
    EXPECT_LT(na / a, 1.35) << "coverage " << c;
  }
}

TEST(AdaptiveModel, ThetaRoughlyConstantAcrossCoverage) {
  // Fig. 11 (Theta): adaptive time is nearly flat across coverage levels
  // (the message-size amortization offsets the denser per-rank loads).
  const auto theta = MachineProfile::theta();
  const double t100 =
      model_adaptive_write(theta, fig11_case(1.0, true)).total_seconds();
  const double t125 =
      model_adaptive_write(theta, fig11_case(0.125, true)).total_seconds();
  EXPECT_LT(t125 / t100, 2.0);
  EXPECT_GT(t125 / t100, 0.5);
}

TEST(AdaptiveModel, FileCountTracksOccupiedRanks) {
  const auto b = model_adaptive_write(MachineProfile::mira(),
                                      fig11_case(0.25, true));
  // 1024 occupied ranks in groups of 8 -> 128 files.
  EXPECT_EQ(b.files, 128);
}

TEST(AdaptiveModel, RejectsBadCoverage) {
  EXPECT_THROW(
      model_adaptive_write(MachineProfile::mira(), fig11_case(0.0, true)),
      ConfigError);
  EXPECT_THROW(
      model_adaptive_write(MachineProfile::mira(), fig11_case(1.5, true)),
      ConfigError);
}

}  // namespace
}  // namespace spio::iosim
