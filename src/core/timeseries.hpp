#pragma once

/// \file timeseries.hpp
/// Multi-timestep datasets: one spio dataset per checkpoint step under a
/// common base directory, plus a small series index maintained by rank 0.
/// This is how a simulation actually uses the library ("data per core for
/// each timestep", §5.1) and what lets post-processing iterate over time.
///
/// Layout:
///   <base>/series.spio            index: magic | version | step numbers
///   <base>/step_<NNNNNN>/...      a regular spio dataset per step

#include <filesystem>
#include <vector>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/comm.hpp"

namespace spio {

class TimeSeries {
 public:
  static constexpr const char* kIndexName = "series.spio";

  /// Collective: write one checkpoint as step `step` of the series at
  /// `base`. `config.dir` is ignored (derived from `base` and `step`).
  /// Steps may be written in any order; rewriting a step replaces it.
  static WriteStats write_step(simmpi::Comm& comm,
                               const PatchDecomposition& decomp,
                               const ParticleBuffer& local,
                               const std::filesystem::path& base, int step,
                               WriterConfig config);

  /// Open a series for reading. Throws `IoError` if no index exists.
  static TimeSeries open(const std::filesystem::path& base);

  /// Step numbers present, ascending.
  const std::vector<int>& steps() const { return steps_; }
  int step_count() const { return static_cast<int>(steps_.size()); }

  /// True when the series contains `step`.
  bool has_step(int step) const;

  /// Open the dataset of one step.
  Dataset open_step(int step) const;

  /// Remove one step's dataset and drop it from the index (checkpoint
  /// retention). Not collective — call from one process while no job is
  /// writing the series. Throws `ConfigError` if the step is absent.
  static void remove_step(const std::filesystem::path& base, int step);

  /// Directory of one step's dataset.
  static std::filesystem::path step_dir(const std::filesystem::path& base,
                                        int step);

 private:
  TimeSeries(std::filesystem::path base, std::vector<int> steps)
      : base_(std::move(base)), steps_(std::move(steps)) {}

  std::filesystem::path base_;
  std::vector<int> steps_;
};

}  // namespace spio
