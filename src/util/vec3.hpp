#pragma once

/// \file vec3.hpp
/// Small fixed-size 3D vector used for particle positions, domain extents
/// and integer grid coordinates throughout the library.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace spio {

/// A trivially-copyable 3-component vector.
///
/// Instantiated as `Vec3d` (positions, physical extents) and `Vec3i`
/// (process-grid and aggregation-grid coordinates). The type is kept
/// aggregate/trivial so buffers of positions can be exchanged as raw bytes
/// by the message-passing layer.
template <typename T>
struct Vec3 {
  T x{};
  T y{};
  T z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}
  /// Broadcast constructor: all three components equal to `v`.
  constexpr explicit Vec3(T v) : x(v), y(v), z(v) {}

  constexpr T& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3 operator+(const Vec3& o) const {
    return {static_cast<T>(x + o.x), static_cast<T>(y + o.y),
            static_cast<T>(z + o.z)};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {static_cast<T>(x - o.x), static_cast<T>(y - o.y),
            static_cast<T>(z - o.z)};
  }
  constexpr Vec3 operator*(T s) const {
    return {static_cast<T>(x * s), static_cast<T>(y * s),
            static_cast<T>(z * s)};
  }
  constexpr Vec3 operator/(T s) const {
    return {static_cast<T>(x / s), static_cast<T>(y / s),
            static_cast<T>(z / s)};
  }
  /// Component-wise product.
  constexpr Vec3 operator*(const Vec3& o) const {
    return {static_cast<T>(x * o.x), static_cast<T>(y * o.y),
            static_cast<T>(z * o.z)};
  }
  /// Component-wise quotient.
  constexpr Vec3 operator/(const Vec3& o) const {
    return {static_cast<T>(x / o.x), static_cast<T>(y / o.y),
            static_cast<T>(z / o.z)};
  }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const = default;

  /// Product of the three components (grid cell counts, volumes).
  constexpr T product() const { return x * y * z; }
  /// Sum of the three components.
  constexpr T sum() const { return x + y + z; }
  /// Largest component value.
  constexpr T max_component() const { return std::max({x, y, z}); }
  /// Smallest component value.
  constexpr T min_component() const { return std::min({x, y, z}); }
  /// Index (0..2) of the largest component; ties resolve to the lowest axis.
  constexpr int max_axis() const {
    if (x >= y && x >= z) return 0;
    if (y >= z) return 1;
    return 2;
  }

  /// Component-wise minimum of two vectors.
  static constexpr Vec3 min(const Vec3& a, const Vec3& b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
  }
  /// Component-wise maximum of two vectors.
  static constexpr Vec3 max(const Vec3& a, const Vec3& b) {
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
  }

  template <typename U>
  constexpr Vec3<U> cast() const {
    return {static_cast<U>(x), static_cast<U>(y), static_cast<U>(z)};
  }
};

template <typename T>
std::ostream& operator<<(std::ostream& os, const Vec3<T>& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

using Vec3d = Vec3<double>;
using Vec3i = Vec3<std::int64_t>;

/// Euclidean length of a double vector.
inline double length(const Vec3d& v) {
  return std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
}

/// Euclidean distance between two points.
inline double distance(const Vec3d& a, const Vec3d& b) { return length(a - b); }

static_assert(sizeof(Vec3d) == 3 * sizeof(double),
              "Vec3d must be tightly packed for raw byte exchange");

}  // namespace spio
