/// \file fig07_read_scaling.cpp
/// Figure 7: visualization-style read strong scaling of a 2-billion-
/// particle dataset written at 64K ranks, in three variants:
///   (a) (2,2,2) aggregation with the spatial metadata file  [8K files]
///   (b) (2,2,2) aggregation without spatial metadata        [8K files]
///   (c) (1,1,1) file-per-process with spatial metadata      [64K files]
/// Part 1 models the paper's platforms (Theta 64-2048 readers, SSD
/// workstation 1-64 readers). Part 2 runs the same three variants for
/// real at workstation scale (threads-as-ranks, local files) and reports
/// measured file/byte touch counts and wall time.

#include <atomic>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "iosim/read_model.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;
using namespace spio::iosim;

namespace {

void model_panel(const MachineProfile& m, const std::vector<int>& readers) {
  Table t("Figure 7 (model): " + m.name +
              " — read time (s), 2^31 particles",
          {"readers", "2x2x2 with metadata", "2x2x2 no metadata",
           "1x1x1 with metadata"});
  for (const int n : readers) {
    ReadCase with_meta{8192, (1ull << 31) * 124, n, ReadMode::kWithMetadata};
    ReadCase no_meta{8192, (1ull << 31) * 124, n, ReadMode::kWithoutMetadata};
    ReadCase fpp{65536, (1ull << 31) * 124, n, ReadMode::kWithMetadata};
    t.row()
        .add_int(n)
        .add_double(model_read_seconds(m, with_meta), 1)
        .add_double(model_read_seconds(m, no_meta), 1)
        .add_double(model_read_seconds(m, fpp), 1);
  }
  t.print(std::cout);
  std::cout << '\n';
}

void functional_panel() {
  // Real files on local disk: 64 writer ranks, 4K particles each.
  constexpr int kWriters = 64;
  constexpr std::uint64_t kPerRank = 4096;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 4});

  TempDir with_meta_dir("fig07-meta"), no_meta_dir("fig07-nometa"),
      fpp_dir("fig07-fpp");
  simmpi::run(kWriters, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(42, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    WriterConfig a;
    a.dir = with_meta_dir.path();
    a.factor = {2, 2, 2};
    write_dataset(comm, decomp, local, a);
    WriterConfig b = a;
    b.dir = no_meta_dir.path();
    b.write_spatial_metadata = false;
    write_dataset(comm, decomp, local, b);
    WriterConfig c = a;
    c.dir = fpp_dir.path();
    c.factor = {1, 1, 1};
    write_dataset(comm, decomp, local, c);
  });

  Table t("Figure 7 (functional, this machine): 262,144 particles, "
          "per-reader touch counts and measured wall time",
          {"readers", "variant", "files/reader", "MB scanned/reader",
           "wall (ms)"});

  for (const int readers : {1, 2, 4, 8}) {
    struct Variant {
      const char* name;
      const TempDir* dir;
      bool scan_all;
    };
    const Variant variants[] = {{"2x2x2 with metadata", &with_meta_dir, false},
                                {"2x2x2 no metadata", &no_meta_dir, true},
                                {"1x1x1 with metadata", &fpp_dir, false}};
    for (const Variant& v : variants) {
      std::atomic<std::uint64_t> files{0}, bytes{0};
      const auto t0 = std::chrono::steady_clock::now();
      simmpi::run(readers, [&](simmpi::Comm& comm) {
        const Dataset ds = Dataset::open(v.dir->path());
        const Box3 tile =
            reader_tile(ds.metadata().domain, comm.rank(), comm.size());
        ReadStats rs;
        if (v.scan_all) {
          ds.query_box_scan_all(tile, &rs);
        } else {
          ds.query_box(tile, -1, readers, &rs);
        }
        files += static_cast<std::uint64_t>(rs.files_opened);
        bytes += rs.bytes_read;
      });
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      t.row()
          .add_int(readers)
          .add(v.name)
          .add_double(static_cast<double>(files) / readers, 1)
          .add_double(static_cast<double>(bytes) / readers / 1e6, 2)
          .add_double(ms, 1);
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  spio::bench::init_observability();
  model_panel(MachineProfile::theta(), {64, 128, 256, 512, 1024, 2048});
  model_panel(MachineProfile::ssd_workstation(), {1, 2, 4, 8, 16, 32, 64});
  functional_panel();
  std::cout << "paper reference: metadata-guided reads strong-scale; the "
               "no-metadata variant is\nslowest and does not improve with "
               "more readers; the 64K-file variant scales but\npays heavy "
               "open costs on Theta and almost none on the SSD "
               "workstation.\n";
  return 0;
}
