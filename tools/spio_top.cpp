/// \file spio_top.cpp
/// Live terminal dashboard over an spio telemetry stream.
///
/// Usage:
///   spio_top <stats.spio.jsonl>              # live: tail the stream
///   spio_top <stats.spio.jsonl> --replay     # step through a recorded run
///   spio_top <stats.spio.jsonl> --replay --speed 2   # paced replay, 2x
///
/// The stream is what a server process writes under
/// `SPIO_STATS=<interval_ms>:<path>` (stats_export.hpp): one JSON object
/// per sampling tick. `spio_top` renders each sample as a dashboard —
/// QPS with a sparkline of recent history, server-side p50/p95/p99
/// latency and queue-wait from the windowed histograms, queue depth and
/// its per-window high-water mark, cache hit rate, coalesce and
/// single-flight shares, and SLO status against the producer's
/// `SPIO_SLO_MS` budget.
///
/// Live mode polls for newly appended complete lines (the exporter
/// writes each line atomically) and exits when the `"final": true`
/// shutdown sample arrives. Replay mode renders the samples already in
/// the file and exits; `--speed X` paces frames at the recorded interval
/// divided by X (default: no delay — CI uses this as a render check).
///
/// On a TTY each frame redraws in place; otherwise frames are printed
/// sequentially, so `spio_top --replay file | tail` works in scripts.
/// Exits 0 on success, 1 on a malformed stream or missing file (replay),
/// 2 on usage errors.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json.hpp"

using spio::obs::JsonValue;

namespace {

struct Sample {
  std::uint64_t seq = 0;
  double ts_s = 0;
  std::uint64_t interval_ms = 0;
  bool final_sample = false;
  double qps = 0;
  double queue_depth = 0;
  double queue_depth_max = 0;
  double cache_hit_rate = 0;
  double coalesce_rate = 0;
  double singleflight_share = 0;
  double slo_ms = 0;
  std::uint64_t slo_violations = 0;
  std::uint64_t slo_violations_total = 0;
  // service.latency_us / service.queue_wait_us / reader.fetch_us merged
  // windows (microseconds); count 0 = histogram absent or idle.
  struct Quantiles {
    std::uint64_t count = 0;
    double mean = 0, p50 = 0, p95 = 0, p99 = 0;
  };
  Quantiles latency, queue_wait, fetch;
  std::uint64_t completed_total = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t deadline_expired_total = 0;
};

Sample::Quantiles parse_quantiles(const JsonValue& windows, const char* name) {
  Sample::Quantiles q;
  const JsonValue* w = windows.find(name);
  if (!w) return q;
  q.count = w->at("count").as_u64();
  q.mean = w->at("mean").as_double();
  q.p50 = w->at("p50").as_double();
  q.p95 = w->at("p95").as_double();
  q.p99 = w->at("p99").as_double();
  return q;
}

std::uint64_t counter_or_zero(const JsonValue& s, const char* name) {
  const JsonValue* counters = s.find("counters");
  if (!counters) return 0;
  const JsonValue* c = counters->find(name);
  return c ? c->as_u64() : 0;
}

Sample parse_sample(const JsonValue& s) {
  Sample out;
  out.seq = s.at("seq").as_u64();
  out.ts_s = s.at("ts_us").as_double() / 1e6;
  out.interval_ms = s.at("interval_ms").as_u64();
  out.final_sample = s.at("final").as_bool();
  const JsonValue& d = s.at("derived");
  out.qps = d.at("qps").as_double();
  out.queue_depth = d.at("queue_depth").as_double();
  out.queue_depth_max = d.at("queue_depth_max").as_double();
  out.cache_hit_rate = d.at("cache_hit_rate").as_double();
  out.coalesce_rate = d.at("coalesce_rate").as_double();
  out.singleflight_share = d.at("singleflight_follower_share").as_double();
  out.slo_ms = d.at("slo_ms").as_double();
  out.slo_violations =
      static_cast<std::uint64_t>(d.at("slo_violations").as_double());
  out.slo_violations_total =
      static_cast<std::uint64_t>(d.at("slo_violations_total").as_double());
  const JsonValue& w = s.at("windows");
  out.latency = parse_quantiles(w, "service.latency_us");
  out.queue_wait = parse_quantiles(w, "service.queue_wait_us");
  out.fetch = parse_quantiles(w, "reader.fetch_us");
  out.completed_total = counter_or_zero(s, "service.completed");
  out.rejected_total = counter_or_zero(s, "service.rejected");
  out.deadline_expired_total = counter_or_zero(s, "service.deadline_expired");
  return out;
}

/// QPS history as a unicode sparkline (oldest left).
std::string sparkline(const std::deque<Sample>& history) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double peak = 0;
  for (const Sample& s : history) peak = std::max(peak, s.qps);
  std::string out;
  for (const Sample& s : history) {
    const int lvl =
        peak <= 0 ? 0
                  : static_cast<int>(std::lround(8.0 * s.qps / peak));
    out += kLevels[std::clamp(lvl, 0, 8)];
  }
  return out;
}

std::string fmt_ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%8.3f", us / 1e3);
  return buf;
}

std::string render_frame(const std::deque<Sample>& history) {
  const Sample& s = history.back();
  std::ostringstream o;
  // Wide enough for the sparkline row: 48 history cells × 3 UTF-8 bytes
  // per block glyph plus the prefix (snprintf truncating mid-glyph would
  // emit a broken byte).
  char line[256];

  std::snprintf(line, sizeof line,
                "spio_top — t=%.1fs  sample #%llu  every %llums%s\n",
                s.ts_s, static_cast<unsigned long long>(s.seq),
                static_cast<unsigned long long>(s.interval_ms),
                s.final_sample ? "  [final]" : "");
  o << line;
  std::snprintf(line, sizeof line, "  qps     %10.1f  %s\n", s.qps,
                sparkline(history).c_str());
  o << line;

  o << "             count   mean ms    p50 ms    p95 ms    p99 ms\n";
  const auto qrow = [&](const char* name, const Sample::Quantiles& q) {
    std::snprintf(line, sizeof line, "  %-9s %8llu  %s  %s  %s  %s\n", name,
                  static_cast<unsigned long long>(q.count),
                  fmt_ms(q.mean).c_str(), fmt_ms(q.p50).c_str(),
                  fmt_ms(q.p95).c_str(), fmt_ms(q.p99).c_str());
    o << line;
  };
  qrow("latency", s.latency);
  qrow("q-wait", s.queue_wait);
  qrow("fetch", s.fetch);

  std::snprintf(line, sizeof line,
                "  queue   %6.0f now / %.0f peak this window\n",
                s.queue_depth, s.queue_depth_max);
  o << line;
  std::snprintf(line, sizeof line,
                "  cache   %5.1f%% hit   coalesce %5.1f%%   "
                "single-flight followers %5.1f%%\n",
                100 * s.cache_hit_rate, 100 * s.coalesce_rate,
                100 * s.singleflight_share);
  o << line;
  std::snprintf(
      line, sizeof line,
      "  totals  %llu completed   %llu rejected   %llu deadline-expired\n",
      static_cast<unsigned long long>(s.completed_total),
      static_cast<unsigned long long>(s.rejected_total),
      static_cast<unsigned long long>(s.deadline_expired_total));
  o << line;

  if (s.slo_ms > 0) {
    const bool violating = s.slo_violations > 0;
    std::snprintf(line, sizeof line,
                  "  slo     %s — budget %.0fms, %llu violation(s) this "
                  "window, %llu total\n",
                  violating ? "VIOLATING" : "OK", s.slo_ms,
                  static_cast<unsigned long long>(s.slo_violations),
                  static_cast<unsigned long long>(s.slo_violations_total));
    o << line;
  } else {
    o << "  slo     (no SPIO_SLO_MS budget set)\n";
  }
  return o.str();
}

bool stdout_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stdout)) != 0;
#else
  return false;
#endif
}

class Dashboard {
 public:
  Dashboard() : tty_(stdout_is_tty()) {}

  /// Returns false on a malformed line (parse/shape error).
  bool feed_line(const std::string& line) {
    if (line.empty()) return true;
    Sample s;
    try {
      s = parse_sample(JsonValue::parse(line));
    } catch (const std::exception& e) {
      std::cerr << "spio_top: malformed sample: " << e.what() << "\n";
      return false;
    }
    history_.push_back(s);
    while (history_.size() > kHistory) history_.pop_front();
    if (tty_) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(render_frame(history_).c_str(), stdout);
    if (!tty_) std::fputs("\n", stdout);
    std::fflush(stdout);
    return true;
  }

  bool saw_final() const {
    return !history_.empty() && history_.back().final_sample;
  }
  bool saw_any() const { return !history_.empty(); }
  std::uint64_t last_interval_ms() const {
    return history_.empty() ? 0 : history_.back().interval_ms;
  }

 private:
  static constexpr std::size_t kHistory = 48;  // sparkline width
  bool tty_;
  std::deque<Sample> history_;
};

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: spio_top <stats.spio.jsonl> [--replay] [--speed <x>]\n";
  std::string path;
  bool replay = false;
  double speed = 0;  // replay pacing; 0 = no delay
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replay") == 0) {
      replay = true;
    } else if (std::strcmp(argv[i], "--speed") == 0 && i + 1 < argc) {
      speed = std::atof(argv[++i]);
      if (speed <= 0) {
        std::cerr << "spio_top: --speed needs a positive factor\n";
        return 2;
      }
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n" << kUsage;
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  Dashboard dash;

  if (replay) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::cerr << "spio_top: cannot open '" << path << "'\n";
      return 1;
    }
    std::string line;
    while (std::getline(f, line)) {
      if (!dash.feed_line(line)) return 1;
      if (speed > 0 && dash.last_interval_ms() > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            static_cast<double>(dash.last_interval_ms()) / speed));
      }
    }
    if (!dash.saw_any()) {
      std::cerr << "spio_top: '" << path << "' holds no samples\n";
      return 1;
    }
    return 0;
  }

  // Live mode: tail the file for complete lines until the final sample.
  // The exporter appends each line with one flushed write, so a line
  // either ends in '\n' or is still being written — never torn.
  std::ifstream f;
  std::string carry;
  while (true) {
    if (!f.is_open()) {
      f.open(path, std::ios::binary);
      if (!f.is_open()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
    }
    std::string chunk(4096, '\0');
    f.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<std::size_t>(f.gcount()));
    if (!chunk.empty()) {
      carry += chunk;
      std::size_t pos = 0, eol;
      while ((eol = carry.find('\n', pos)) != std::string::npos) {
        if (!dash.feed_line(carry.substr(pos, eol - pos))) return 1;
        pos = eol + 1;
      }
      carry.erase(0, pos);
      if (dash.saw_final()) return 0;
    } else {
      f.clear();  // EOF for now; wait for the producer to append
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}
