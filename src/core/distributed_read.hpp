#pragma once

/// \file distributed_read.hpp
/// Cooperative parallel reads: the read-side mirror of two-phase I/O.
///
/// `restart_read` has every rank independently open the files its tile
/// intersects, so a file straddling tile boundaries is opened (and its
/// boundary region scanned) by several ranks. `distributed_read` instead
/// assigns every data file to exactly one reader (the rank whose tile
/// contains the file's center — metadata-driven, no coordination), has
/// each reader read only its assigned files, and redistributes particles
/// to their tile owners over the interconnect. Total file opens equal
/// the file count regardless of reader count, trading filesystem
/// pressure for (fast) network exchange — the same trade the paper's
/// write-side aggregation makes.

#include <filesystem>

#include "core/reader.hpp"
#include "simmpi/comm.hpp"
#include "workload/decomposition.hpp"

namespace spio {

/// Collective: every rank receives exactly the particles in its patch of
/// `decomp`, with each data file read by exactly one rank. `levels`
/// bounds the LOD prefix read from every file (-1 = all). `stats`
/// reports this rank's own file I/O only.
///
/// The result is identical (up to particle order) to
/// `restart_read(comm, decomp, dir)` at the same LOD depth.
ParticleBuffer distributed_read(simmpi::Comm& comm,
                                const PatchDecomposition& decomp,
                                const std::filesystem::path& dir,
                                int levels = -1, ReadStats* stats = nullptr);

/// The file->reader assignment used by `distributed_read`: the rank whose
/// patch contains the file's bounds center. Deterministic given the
/// metadata, so all ranks compute it locally.
int file_reader(const DatasetMetadata& meta, int file_index,
                const PatchDecomposition& decomp);

}  // namespace spio
