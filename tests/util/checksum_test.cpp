#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"

namespace spio {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(Crc64, MatchesCrc64XzCheckValue) {
  // The standard CRC-64/XZ check value.
  EXPECT_EQ(crc64(bytes_of("123456789")), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64, EmptyInputIsZero) {
  EXPECT_EQ(crc64({}), 0u);
}

TEST(Crc64, DetectsSingleBitFlip) {
  auto a = bytes_of("the quick brown fox jumps over the lazy dog");
  auto b = a;
  b[17] ^= std::byte{0x01};
  EXPECT_NE(crc64(a), crc64(b));
}

TEST(Crc64, DetectsSwappedBlocks) {
  // Same bytes, different order — a plain sum would miss this.
  auto ab = bytes_of("blockAblockB");
  auto ba = bytes_of("blockBblockA");
  EXPECT_NE(crc64(ab), crc64(ba));
}

TEST(Crc64, IsAPureFunction) {
  const auto data = bytes_of("spio checksum determinism");
  EXPECT_EQ(crc64(data), crc64(data));
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> b(n);
  Xoshiro256 rng(seed);
  for (auto& x : b) x = static_cast<std::byte>(rng.next());
  return b;
}

TEST(Crc64, BytewiseReferenceMatchesKnownVectors) {
  // The reference must independently satisfy the CRC-64/XZ parameters —
  // it is the oracle the sliced tables are checked against.
  EXPECT_EQ(crc64_bytewise(bytes_of("123456789")), 0x995DC9BBDF1939FAULL);
  EXPECT_EQ(crc64_bytewise({}), 0u);
}

TEST(Crc64, SlicedMatchesBytewiseOnRandomBuffers) {
  // Sweep sizes across the kernel's regimes: empty, sub-word tail only,
  // exactly one 8-byte word, one 16-byte block, and lengths exercising
  // every head/body/tail combination around the block boundaries.
  for (const std::size_t n :
       {0u, 1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 23u, 24u, 31u, 32u, 33u,
        63u, 64u, 100u, 255u, 256u, 1000u, 4096u, 65537u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto data = random_bytes(n, seed);
      EXPECT_EQ(crc64(data), crc64_bytewise(data))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Crc64, SlicedMatchesBytewiseAtEveryAlignment) {
  // The word loop has an alignment head; every offset into a buffer must
  // still agree with the byte-at-a-time reference.
  const auto data = random_bytes(256, 42);
  for (std::size_t off = 0; off < 24; ++off) {
    const std::span<const std::byte> tail{data.data() + off,
                                          data.size() - off};
    EXPECT_EQ(crc64(tail), crc64_bytewise(tail)) << "offset=" << off;
  }
}

TEST(Crc64, StreamingMatchesOneShotAtEverySplitPoint) {
  // Feeding [0, k) then [k, n) must equal one pass for every k — the
  // contract that lets the writer checksum chunk-by-chunk during the
  // file write.
  const auto data = random_bytes(97, 7);
  const std::uint64_t whole = crc64(data);
  for (std::size_t k = 0; k <= data.size(); ++k) {
    Crc64 crc;
    crc.update({data.data(), k});
    crc.update({data.data() + k, data.size() - k});
    EXPECT_EQ(crc.value(), whole) << "split at " << k;
  }
}

TEST(Crc64, StreamingValueIsIdempotentAndResettable) {
  const auto data = random_bytes(1000, 9);
  Crc64 crc;
  crc.update(data);
  const std::uint64_t v = crc.value();
  EXPECT_EQ(crc.value(), v);  // value() must not consume state
  crc.reset();
  EXPECT_EQ(crc.value(), crc64({}));
  crc.update(data);
  EXPECT_EQ(crc.value(), v);
}

TEST(Crc64, StreamingInManySmallChunksMatchesOneShot) {
  const auto data = random_bytes(10000, 13);
  Crc64 crc;
  std::size_t off = 0;
  // Irregular chunk sizes, including zero-length updates.
  const std::size_t chunks[] = {1, 0, 3, 8, 16, 17, 100, 1, 0, 4096};
  std::size_t c = 0;
  while (off < data.size()) {
    const std::size_t n = std::min(chunks[c % std::size(chunks)],
                                   data.size() - off);
    crc.update({data.data() + off, n});
    off += n;
    ++c;
  }
  EXPECT_EQ(crc.value(), crc64(data));
}

TEST(Crc64, WriteFileStreamsTheSameChecksumItWrites) {
  TempDir dir("crc64-write");
  const auto path = dir.path() / "data.bin";
  // Larger than the 1 MiB I/O chunk so the loop runs more than once,
  // with a ragged tail.
  const auto data = random_bytes((1u << 20) * 2 + 12345, 21);

  const std::uint64_t written = crc64_write_file(path, data);
  EXPECT_EQ(written, crc64(data));
  EXPECT_EQ(crc64_file(path), written);

  std::ifstream f(path, std::ios::binary);
  std::vector<std::byte> back(data.size());
  f.read(reinterpret_cast<char*>(back.data()),
         static_cast<std::streamsize>(back.size()));
  ASSERT_TRUE(f.good());
  EXPECT_EQ(back, data);
  EXPECT_EQ(std::filesystem::file_size(path), data.size());
}

TEST(Crc64, WriteFileReplacesExistingContents) {
  TempDir dir("crc64-replace");
  const auto path = dir.path() / "data.bin";
  const auto longer = random_bytes(4096, 1);
  const auto shorter = random_bytes(100, 2);
  crc64_write_file(path, longer);
  const std::uint64_t crc = crc64_write_file(path, shorter);
  EXPECT_EQ(std::filesystem::file_size(path), shorter.size());
  EXPECT_EQ(crc64_file(path), crc);
}

TEST(Crc64, FileChecksumOfMissingFileThrows) {
  TempDir dir("crc64-missing");
  EXPECT_THROW(crc64_file(dir.path() / "nope.bin"), IoError);
}

TEST(Crc64, EmptyFileChecksumIsEmptyBufferChecksum) {
  TempDir dir("crc64-empty");
  const auto path = dir.path() / "empty.bin";
  EXPECT_EQ(crc64_write_file(path, {}), crc64({}));
  EXPECT_EQ(crc64_file(path), crc64({}));
}

}  // namespace
}  // namespace spio
