#include "baselines/ior_like.hpp"

#include <chrono>
#include <cstdio>

#include "obs/trace.hpp"
#include "simmpi/reduce_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace spio::baselines {

double IorResult::throughput_gbs() const {
  return spio::throughput_gbs(total_bytes, write_seconds);
}

IorResult ior_write(simmpi::Comm& comm, const IorConfig& config) {
  obs::ScopedSpan span("baseline.ior.write", "baseline");
  SPIO_CHECK(!config.dir.empty(), ConfigError, "IorConfig.dir must be set");
  SPIO_CHECK(config.transfer_bytes > 0 && config.block_bytes > 0, ConfigError,
             "IOR block and transfer sizes must be positive");

  if (comm.rank() == 0) {
    std::error_code ec;
    std::filesystem::create_directories(config.dir, ec);
    SPIO_CHECK(!ec, IoError,
               "cannot create '" << config.dir.string()
                                 << "': " << ec.message());
    if (config.mode == IorMode::kSharedFile) {
      // Preallocate the shared file.
      std::FILE* f = std::fopen((config.dir / "ior_shared.bin").c_str(), "wb");
      SPIO_CHECK(f != nullptr, IoError, "cannot create shared IOR file");
      std::fseek(f,
                 static_cast<long>(config.block_bytes *
                                   static_cast<std::uint64_t>(comm.size())) -
                     1,
                 SEEK_SET);
      std::fputc(0, f);
      std::fclose(f);
    }
  }
  comm.barrier();

  // Fill the transfer buffer with incompressible noise so smart
  // filesystems cannot cheat.
  std::vector<unsigned char> buf(config.transfer_bytes);
  Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 1);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.next());

  const auto path =
      config.mode == IorMode::kFilePerProcess
          ? config.dir / ("ior_" + std::to_string(comm.rank()) + ".bin")
          : config.dir / "ior_shared.bin";

  const auto t0 = std::chrono::steady_clock::now();
  std::FILE* f = std::fopen(
      path.c_str(), config.mode == IorMode::kFilePerProcess ? "wb" : "r+b");
  SPIO_CHECK(f != nullptr, IoError, "cannot open '" << path.string() << "'");
  if (config.mode == IorMode::kSharedFile) {
    std::fseek(f,
               static_cast<long>(config.block_bytes *
                                 static_cast<std::uint64_t>(comm.rank())),
               SEEK_SET);
  }
  std::uint64_t remaining = config.block_bytes;
  bool ok = true;
  while (remaining > 0 && ok) {
    const std::uint64_t n = std::min<std::uint64_t>(remaining, buf.size());
    ok = std::fwrite(buf.data(), 1, n, f) == n;
    remaining -= n;
  }
  std::fclose(f);  // close but no fsync, as in the paper's runs
  SPIO_CHECK(ok, IoError, "IOR write failed on rank " << comm.rank());
  const double mine =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  IorResult result;
  result.write_seconds = comm.allreduce(mine, simmpi::op::max);
  result.total_bytes =
      config.block_bytes * static_cast<std::uint64_t>(comm.size());
  return result;
}

}  // namespace spio::baselines
