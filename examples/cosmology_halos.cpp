/// \file cosmology_halos.cpp
/// Cosmology-style workload — the paper's headline motivation (HACC,
/// Dark Sky): a sparse background with a few dense Plummer halos. Shows
/// how the pieces compose for strongly clustered data:
///   * density-refined adaptive aggregation balances file sizes even
///     though a few ranks hold most of the mass,
///   * the stratified LOD order gives tiny prefixes full spatial
///     coverage (every halo visible at 1% of the data),
///   * k-nearest-neighbour queries resolve halo centers touching only a
///     couple of files.
///
/// Usage: cosmology_halos [output-dir]   (default: ./halo_run)

#include <iostream>

#include "core/density.hpp"
#include "core/knn.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "halo_run";

  constexpr int kRanks = 32;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 2});
  // Halos live on four ranks; everyone else holds thin background gas.
  const int halo_ranks[] = {5, 12, 21, 26};
  constexpr std::uint64_t kHaloParticles = 60000;
  constexpr std::uint64_t kBackground = 1500;

  std::cout << "writing 4 Plummer halos + background with "
            << kRanks << " ranks (kd-refined adaptive, stratified LOD)\n";
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const bool is_halo =
        std::find(std::begin(halo_ranks), std::end(halo_ranks), r) !=
        std::end(halo_ranks);
    ParticleBuffer local =
        is_halo ? workload::plummer_sphere(
                      Schema::uintah(), decomp.patch(r), kHaloParticles,
                      0.08, stream_seed(77, static_cast<std::uint64_t>(r)),
                      static_cast<std::uint64_t>(r) * 100000)
                : workload::uniform(
                      Schema::uintah(), decomp.patch(r), kBackground,
                      stream_seed(77, static_cast<std::uint64_t>(r)),
                      static_cast<std::uint64_t>(r) * 100000);
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 2};
    cfg.adaptive = true;
    cfg.adaptive_refine = true;               // balance the halo mass
    cfg.heuristic = LodHeuristic::kStratified;  // space-covering prefixes
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir);
  std::cout << "\nfile balance under kd-refined adaptive aggregation:\n";
  std::uint64_t mn = ~0ull, mx = 0;
  for (const auto& f : ds.metadata().files) {
    mn = std::min(mn, f.particle_count);
    mx = std::max(mx, f.particle_count);
    std::cout << "  " << f.file_name() << "  " << f.particle_count
              << " particles, " << f.bounds << "\n";
  }
  std::cout << "  imbalance max/min = "
            << static_cast<double>(mx) / static_cast<double>(mn) << "\n";

  // Coarse prefix coverage: 1% of the data must already see every halo.
  const DensityField full = [&] {
    DensityField f(ds.metadata().domain, {16, 16, 8});
    const auto all = ds.query_box(ds.metadata().domain);
    f.add(all);
    f.normalize();
    return f;
  }();
  ParticleBuffer coarse(ds.metadata().schema);
  ReadStats coarse_rs;
  for (int fi = 0; fi < ds.file_count(); ++fi) {
    const auto& rec = ds.metadata().files[static_cast<std::size_t>(fi)];
    const auto want = std::max<std::uint64_t>(1, rec.particle_count / 100);
    const auto buf = ds.read_data_file(fi, -1, 1, &coarse_rs);
    for (std::uint64_t i = 0; i < want; ++i)
      coarse.append_from(buf, static_cast<std::size_t>(i));
  }
  DensityField coarse_field(ds.metadata().domain, {16, 16, 8});
  coarse_field.add(coarse);
  coarse_field.normalize();
  std::cout << "\n1% prefix (" << coarse.size() << " particles) covers "
            << 100.0 * coarse_field.coverage_of(full)
            << "% of occupied space (stratified order)\n";

  // k-NN at a halo center: the metadata routes the search to ~1 file.
  const Vec3d center = decomp.patch(halo_ranks[0]).center();
  ReadStats knn_rs;
  const KnnResult nn = k_nearest(ds, center, 16, &knn_rs);
  std::cout << "\n16 nearest neighbours of halo center " << center << ":\n"
            << "  farthest at distance " << nn.distances.back() << ", "
            << knn_rs.files_opened << "/" << ds.file_count()
            << " files touched, " << format_bytes(knn_rs.bytes_read)
            << " read\n";
  return 0;
}
