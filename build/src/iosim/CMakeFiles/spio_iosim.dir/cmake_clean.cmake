file(REMOVE_RECURSE
  "CMakeFiles/spio_iosim.dir/event_sim.cpp.o"
  "CMakeFiles/spio_iosim.dir/event_sim.cpp.o.d"
  "CMakeFiles/spio_iosim.dir/machine_profile.cpp.o"
  "CMakeFiles/spio_iosim.dir/machine_profile.cpp.o.d"
  "CMakeFiles/spio_iosim.dir/read_model.cpp.o"
  "CMakeFiles/spio_iosim.dir/read_model.cpp.o.d"
  "CMakeFiles/spio_iosim.dir/write_model.cpp.o"
  "CMakeFiles/spio_iosim.dir/write_model.cpp.o.d"
  "libspio_iosim.a"
  "libspio_iosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_iosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
