file(REMOVE_RECURSE
  "../bench/fig03_filecount"
  "../bench/fig03_filecount.pdb"
  "CMakeFiles/fig03_filecount.dir/fig03_filecount.cpp.o"
  "CMakeFiles/fig03_filecount.dir/fig03_filecount.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_filecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
