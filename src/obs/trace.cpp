#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace spio::obs {

namespace {

thread_local void* tls_buffer = nullptr;

/// Threads outside the simmpi rank range (the main thread, read-engine
/// and query-service pool workers) each get their own trace track at
/// `kAuxTidBase + n` in first-record order. Folding them onto one tid
/// would interleave concurrent workers' spans on a single track and
/// break the per-track nesting invariant `spio_trace --check` enforces.
constexpr int kAuxTidBase = 1000;
std::atomic<int> next_aux_tid{kAuxTidBase};
thread_local int tls_aux_tid = -1;

int current_tid() {
  const int r = thread_rank();
  if (r >= 0) return r;
  if (tls_aux_tid < 0)
    tls_aux_tid = next_aux_tid.fetch_add(1, std::memory_order_relaxed);
  return tls_aux_tid;
}

/// JSON string escaping for event names (names are code-controlled
/// literals, but the export must stay valid JSON whatever they hold).
void append_escaped(std::string& out, const char* s) {
  for (const char* p = s; *p; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  out += ss.str();
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();  // leaked: outlives rank threads & atexit
  return *t;
}

Tracer::Buffer& Tracer::local_buffer() {
  if (tls_buffer) return *static_cast<Buffer*>(tls_buffer);
  std::lock_guard lk(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer& b = *buffers_.back();
  b.events.reserve(1024);
  tls_buffer = &b;
  return b;
}

void Tracer::record_complete(const char* name, const char* cat, double ts_us,
                             double dur_us, std::uint64_t qid) {
  Buffer& b = local_buffer();
  std::lock_guard lk(b.mu);
  b.events.push_back(Event{name, cat, qid ? "qid" : nullptr, ts_us, dur_us,
                           qid, current_tid()});
}

void Tracer::record_instant(const char* name, const char* cat,
                            std::uint64_t arg, const char* arg_name) {
  if (!enabled()) return;
  Buffer& b = local_buffer();
  std::lock_guard lk(b.mu);
  b.events.push_back(Event{name, cat, arg_name, now_us(), -1.0, arg,
                           current_tid()});
}

std::size_t Tracer::event_count() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    std::lock_guard bl(b->mu);
    n += b->events.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  for (const auto& b : buffers_) {
    std::lock_guard bl(b->mu);
    b->events.clear();
  }
}

std::string Tracer::chrome_json() const {
  // Snapshot all buffers, then merge-sort by timestamp so the file reads
  // chronologically (viewers do not require it, tests do).
  std::vector<Event> all;
  {
    std::lock_guard lk(mu_);
    for (const auto& b : buffers_) {
      std::lock_guard bl(b->mu);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::set<int> ranks;
  for (const Event& e : all) ranks.insert(e.rank);

  std::string out;
  out.reserve(128 + all.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"spio\"},"
         "\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  // One named track per rank / auxiliary thread (pid 0 groups the job).
  for (const int r : ranks) {
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(r);
    out += ",\"args\":{\"name\":\"";
    out += r < kAuxTidBase ? "rank " + std::to_string(r)
                           : "thread " + std::to_string(r - kAuxTidBase);
    out += "\"}}";
  }
  for (const Event& e : all) {
    sep();
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat);
    out += "\",\"ph\":\"";
    out += (e.dur_us < 0 ? "i" : "X");
    out += "\",\"ts\":";
    append_double(out, e.ts_us);
    if (e.dur_us >= 0) {
      out += ",\"dur\":";
      append_double(out, e.dur_us);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(e.rank);
    if (e.arg_name) {
      out += ",\"args\":{\"";
      append_escaped(out, e.arg_name);
      out += "\":";
      out += std::to_string(e.arg);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void Tracer::write_chrome_trace(const std::filesystem::path& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  SPIO_CHECK(f.good(), IoError,
             "cannot open trace file '" << path.string() << "' for writing");
  f << chrome_json() << "\n";
  f.flush();
  SPIO_CHECK(f.good(), IoError,
             "failed writing trace file '" << path.string() << "'");
}

void Tracer::flush_env() const {
  const char* path = env_trace_path();
  if (path && *path) write_chrome_trace(path);
}

}  // namespace spio::obs
