#pragma once

/// Shared plumbing for the chaos suite: a standard 4-rank write job that
/// runs under a fault plan and classifies its outcome, plus directory
/// snapshots for byte-exact comparison against a fault-free golden run.

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/writer.hpp"
#include "faultsim/checked_io.hpp"
#include "faultsim/fault_plan.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio::chaos {

constexpr int kRanks = 4;
constexpr std::uint64_t kPerRank = 64;

inline PatchDecomposition test_decomp() {
  return PatchDecomposition(Box3::unit(), {2, 2, 1});
}

inline ParticleBuffer local_particles(const PatchDecomposition& decomp,
                                      int rank,
                                      std::uint64_t per_rank = kPerRank) {
  return workload::uniform(
      Schema::uintah(), decomp.patch(rank), per_rank,
      stream_seed(2024, static_cast<std::uint64_t>(rank)),
      static_cast<std::uint64_t>(rank) * per_rank);
}

inline WriterConfig base_config(const std::filesystem::path& dir) {
  WriterConfig cfg;
  cfg.dir = dir;
  cfg.factor = {2, 1, 1};
  return cfg;
}

/// Short timeouts so injected drops cost milliseconds, and headroom above
/// the largest `count` a random plan generates.
inline faultsim::RetryPolicy fast_retry() {
  faultsim::RetryPolicy p;
  p.max_attempts = 6;
  p.ack_timeout = std::chrono::milliseconds(25);
  return p;
}

/// Reference dataset written with no injector installed (the production
/// code path). Chaos runs that recover must reproduce it byte for byte.
inline void write_golden(const std::filesystem::path& dir) {
  const PatchDecomposition decomp = test_decomp();
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    write_dataset(comm, decomp, local_particles(decomp, comm.rank()),
                  base_config(dir));
  });
}

struct ChaosOutcome {
  bool completed = false;
  bool rank_death = false;   // structured: injected death propagated
  bool fault_error = false;  // structured: retry budget exhausted
  std::string what;
  std::vector<faultsim::FaultEvent> events;
};

/// One write job under `plan`. Every run must end in exactly one of the
/// three outcome states — anything else (deadlock, crash, silent loss)
/// fails the calling test.
inline ChaosOutcome run_chaos_write(
    const std::filesystem::path& dir, const faultsim::FaultPlan& plan,
    const faultsim::RetryPolicy& retry = fast_retry()) {
  const PatchDecomposition decomp = test_decomp();
  faultsim::FaultInjector inj(plan, kRanks);
  ChaosOutcome out;
  try {
    simmpi::run(kRanks, simmpi::RunOptions{&inj}, [&](simmpi::Comm& comm) {
      WriterConfig cfg = base_config(dir);
      cfg.faults = &inj;
      cfg.retry = retry;
      write_dataset(comm, decomp, local_particles(decomp, comm.rank()), cfg);
    });
    out.completed = true;
  } catch (const faultsim::RankDeath& e) {
    out.rank_death = true;
    out.what = e.what();
  } catch (const faultsim::FaultError& e) {
    out.fault_error = true;
    out.what = e.what();
  }
  out.events = inj.events();
  return out;
}

/// Name -> contents of every regular file in `dir`.
inline std::map<std::string, std::vector<std::byte>> snapshot_dir(
    const std::filesystem::path& dir) {
  std::map<std::string, std::vector<std::byte>> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files.emplace(entry.path().filename().string(),
                  read_file(entry.path()));
  }
  return files;
}

/// Contents of a fault-free golden run, written once per test binary.
inline const std::map<std::string, std::vector<std::byte>>&
golden_snapshot() {
  static const auto snapshot = [] {
    TempDir dir("spio-chaos-golden");
    write_golden(dir.path());
    return snapshot_dir(dir.path());
  }();
  return snapshot;
}

}  // namespace spio::chaos
