#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spio::workload {

namespace {

/// Clamp a coordinate strictly inside [lo, hi) so half-open partition
/// membership is unambiguous.
double clamp_open(double v, double lo, double hi) {
  const double eps = (hi - lo) * 1e-12;
  return std::clamp(v, lo, hi - eps);
}

Vec3d clamp_into(const Box3& box, Vec3d p) {
  for (int a = 0; a < 3; ++a) p[a] = clamp_open(p[a], box.lo[a], box.hi[a]);
  return p;
}

void append_particle(ParticleBuffer& buf, const Vec3d& pos, std::uint64_t id,
                     Xoshiro256& rng) {
  const std::size_t i = buf.size();
  buf.append_uninitialized();
  buf.set_position(i, pos);
  fill_attributes(buf, i, id, rng);
}

}  // namespace

void fill_attributes(ParticleBuffer& buf, std::size_t i, std::uint64_t id,
                     Xoshiro256& rng) {
  const Schema& s = buf.schema();
  for (std::size_t f = 1; f < s.field_count(); ++f) {
    const FieldDesc& fd = s.fields()[f];
    if (fd.name == "stress") {
      // Symmetric-ish tensor with dominant diagonal, like an MPM stress.
      for (std::uint32_t c = 0; c < fd.components; ++c) {
        const bool diag = (fd.components == 9) && (c % 4 == 0);
        buf.set_f64(i, f, c, (diag ? 1.0e5 : 1.0e3) * rng.normal());
      }
    } else if (fd.name == "density") {
      buf.set_f64(i, f, 0, 1000.0 + 50.0 * rng.normal());
    } else if (fd.name == "volume") {
      buf.set_f64(i, f, 0, 1e-9 * (1.0 + 0.1 * rng.uniform()));
    } else if (fd.name == "id") {
      buf.set_f64(i, f, 0, static_cast<double>(id));
    } else if (fd.name == "type" && fd.type == FieldType::kF32) {
      buf.set_f32(i, f, 0, static_cast<float>(rng.uniform_index(4)));
    } else {
      // Unknown attribute: fill with uniform noise of the right type.
      for (std::uint32_t c = 0; c < fd.components; ++c) {
        if (fd.type == FieldType::kF64)
          buf.set_f64(i, f, c, rng.uniform());
        else
          buf.set_f32(i, f, c, static_cast<float>(rng.uniform()));
      }
    }
  }
}

ParticleBuffer uniform(const Schema& schema, const Box3& patch,
                       std::uint64_t count, std::uint64_t seed,
                       std::uint64_t first_id) {
  SPIO_EXPECTS(!patch.is_empty());
  ParticleBuffer buf(schema);
  buf.reserve(count);
  Xoshiro256 rng(seed);
  for (std::uint64_t k = 0; k < count; ++k) {
    Vec3d p;
    for (int a = 0; a < 3; ++a)
      p[a] = clamp_open(rng.uniform(patch.lo[a], patch.hi[a]), patch.lo[a],
                        patch.hi[a]);
    append_particle(buf, p, first_id + k, rng);
  }
  return buf;
}

ParticleBuffer gaussian_clusters(const Schema& schema, const Box3& patch,
                                 std::uint64_t count, int clusters,
                                 double sigma_frac, std::uint64_t seed,
                                 std::uint64_t first_id) {
  SPIO_EXPECTS(!patch.is_empty());
  SPIO_EXPECTS(clusters > 0);
  SPIO_EXPECTS(sigma_frac > 0.0);
  ParticleBuffer buf(schema);
  buf.reserve(count);
  Xoshiro256 rng(seed);

  std::vector<Vec3d> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    Vec3d ctr;
    for (int a = 0; a < 3; ++a) ctr[a] = rng.uniform(patch.lo[a], patch.hi[a]);
    centers.push_back(ctr);
  }
  const Vec3d sigma = patch.size() * sigma_frac;
  for (std::uint64_t k = 0; k < count; ++k) {
    const Vec3d& ctr =
        centers[static_cast<std::size_t>(rng.uniform_index(centers.size()))];
    Vec3d p;
    for (int a = 0; a < 3; ++a) p[a] = ctr[a] + sigma[a] * rng.normal();
    append_particle(buf, clamp_into(patch, p), first_id + k, rng);
  }
  return buf;
}

Box3 coverage_region(const Box3& domain, double coverage) {
  SPIO_EXPECTS(coverage > 0.0 && coverage <= 1.0);
  Box3 region = domain;
  region.hi.x = domain.lo.x + domain.size().x * coverage;
  return region;
}

ParticleBuffer uniform_in_region(const Schema& schema, const Box3& patch,
                                 const Box3& region, std::uint64_t count,
                                 std::uint64_t seed, std::uint64_t first_id) {
  const Box3 live = Box3::intersection(patch, region);
  if (live.is_empty() || count == 0) return ParticleBuffer(schema);
  return uniform(schema, live, count, seed, first_id);
}

ParticleBuffer plummer_sphere(const Schema& schema, const Box3& patch,
                              std::uint64_t count, double scale_frac,
                              std::uint64_t seed, std::uint64_t first_id) {
  SPIO_EXPECTS(!patch.is_empty());
  SPIO_EXPECTS(scale_frac > 0.0);
  ParticleBuffer buf(schema);
  buf.reserve(count);
  Xoshiro256 rng(seed);
  const Vec3d center = patch.center();
  const double a = scale_frac * patch.size().min_component();
  for (std::uint64_t k = 0; k < count; ++k) {
    // Inverse-CDF sampling of the Plummer radial profile:
    // r = a / sqrt(u^(-2/3) - 1) for u uniform in (0, 1).
    double u = rng.uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    const double r = a / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    // Uniform direction on the sphere.
    const double cos_t = rng.uniform(-1.0, 1.0);
    const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
    const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const Vec3d p{center.x + r * sin_t * std::cos(phi),
                  center.y + r * sin_t * std::sin(phi),
                  center.z + r * cos_t};
    append_particle(buf, clamp_into(patch, p), first_id + k, rng);
  }
  return buf;
}

ParticleBuffer injection(const Schema& schema, const Box3& patch,
                         const Box3& domain, double t01, std::uint64_t count,
                         std::uint64_t seed, std::uint64_t first_id) {
  SPIO_EXPECTS(t01 >= 0.0 && t01 <= 1.0);
  if (t01 <= 0.0) return ParticleBuffer(schema);
  const Box3 front = coverage_region(domain, t01);
  const Box3 live = Box3::intersection(patch, front);
  if (live.is_empty()) return ParticleBuffer(schema);

  ParticleBuffer buf(schema);
  buf.reserve(count);
  Xoshiro256 rng(seed);
  const double x0 = domain.lo.x;
  const double front_x = front.hi.x;
  std::uint64_t id = first_id;
  for (std::uint64_t k = 0; k < count; ++k) {
    Vec3d p;
    for (int a = 0; a < 3; ++a)
      p[a] = clamp_open(rng.uniform(live.lo[a], live.hi[a]), live.lo[a],
                        live.hi[a]);
    // Density decays linearly toward the jet front: keep a particle with
    // probability (1 - progress/2), so the inlet is denser than the front.
    const double progress = (p.x - x0) / std::max(front_x - x0, 1e-300);
    if (rng.uniform() < 1.0 - 0.5 * progress) {
      append_particle(buf, p, id++, rng);
    }
  }
  return buf;
}

}  // namespace spio::workload
