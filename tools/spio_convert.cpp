/// \file spio_convert.cpp
/// Convert a legacy particle dataset (file-per-process, shared file, or
/// rank-order sub-filed) into a spatially-aware spio dataset.
///
/// Usage:
///   spio_convert --from fpp|shared|rankorder <src-dir> <dst-dir>
///                [--ranks N] [--factor PxxPyxPz] [--adaptive] [--refine]

#include <cstring>
#include <iostream>
#include <string>

#include "baselines/convert.hpp"
#include "simmpi/runtime.hpp"

using namespace spio;
using namespace spio::baselines;

namespace {

bool parse_factor(const std::string& s, PartitionFactor* out) {
  int px = 0, py = 0, pz = 0;
  if (std::sscanf(s.c_str(), "%dx%dx%d", &px, &py, &pz) != 3) return false;
  *out = {px, py, pz};
  return out->valid();
}

}  // namespace

int main(int argc, char** argv) {
  LegacyFormat format = LegacyFormat::kFilePerProcess;
  std::filesystem::path src, dst;
  int ranks = 8;
  WriterConfig cfg;
  cfg.factor = {2, 2, 2};

  bool have_format = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--from") {
      const std::string v = next();
      if (v == "fpp") format = LegacyFormat::kFilePerProcess;
      else if (v == "shared") format = LegacyFormat::kSharedFile;
      else if (v == "rankorder") format = LegacyFormat::kRankOrder;
      else {
        std::cerr << "unknown format '" << v << "'\n";
        return 2;
      }
      have_format = true;
    } else if (arg == "--ranks") {
      ranks = std::atoi(next());
    } else if (arg == "--factor") {
      if (!parse_factor(next(), &cfg.factor)) {
        std::cerr << "bad factor (want e.g. 2x2x2)\n";
        return 2;
      }
    } else if (arg == "--adaptive") {
      cfg.adaptive = true;
    } else if (arg == "--refine") {
      cfg.adaptive = true;
      cfg.adaptive_refine = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (!have_format || positional.size() != 2 || ranks < 1) {
    std::cerr << "usage: spio_convert --from fpp|shared|rankorder <src> "
                 "<dst> [--ranks N] [--factor PxxPyxPz] [--adaptive] "
                 "[--refine]\n";
    return 2;
  }
  src = positional[0];
  cfg.dir = positional[1];

  try {
    ConvertResult result;
    simmpi::run(ranks, [&](simmpi::Comm& comm) {
      const ConvertResult r = convert_to_spio(comm, format, src, cfg);
      if (comm.rank() == 0) result = r;
    });
    std::cout << "converted " << result.particles << " particles: "
              << result.source_files << " legacy file(s) -> "
              << result.output_files << " spio file(s) at "
              << cfg.dir.string() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
