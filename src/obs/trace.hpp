#pragma once

/// \file trace.hpp
/// Per-rank span tracing with Chrome trace-event JSON export.
///
/// The `Tracer` is a process-wide singleton collecting *complete* spans
/// (`ph:"X"`, begin + duration) and instant events (`ph:"i"`) into
/// per-thread buffers; `chrome_json()` merges every rank's buffer into
/// one trace-event file loadable in `chrome://tracing` or Perfetto.
/// Each simmpi rank renders as its own thread track (`tid` = rank);
/// non-rank threads (main, pool workers) get distinct tracks at
/// `tid >= 1000` so concurrent workers' spans never interleave.
///
/// Cost model:
///   - collection disabled: constructing a `ScopedSpan` is one relaxed
///     atomic load plus one flight-recorder record (a clock read and a
///     handful of relaxed stores; verified by the `perf`-label overhead
///     test);
///   - collection enabled: one uncontended mutex acquire and one vector
///     append per event; event buffers grow geometrically, so there is
///     no per-event allocation in steady state.
///
/// Span and category strings must be string literals (or otherwise
/// outlive the tracer): events store the pointers, never copies, to keep
/// the enabled path allocation-free.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/query_context.hpp"

namespace spio::obs {

class Tracer {
 public:
  static Tracer& instance();

  /// Append a complete span on the calling thread's track. A non-zero
  /// `qid` (the active query ID, query_context.hpp) renders as
  /// `args:{"qid":N}` so spans of one query correlate across tracks.
  void record_complete(const char* name, const char* cat, double ts_us,
                       double dur_us, std::uint64_t qid = 0);

  /// Append an instant event (thread-scoped) with an optional integer
  /// argument (e.g. a byte count).
  void record_instant(const char* name, const char* cat,
                      std::uint64_t arg = 0, const char* arg_name = nullptr);

  /// Total events across all threads (diagnostics/tests).
  std::size_t event_count() const;

  /// Drop every collected event (buffers stay registered).
  void clear();

  /// The merged Chrome trace-event JSON document: an object with a
  /// `traceEvents` array (spans of all ranks, sorted by timestamp, plus
  /// `thread_name` metadata naming each rank track).
  std::string chrome_json() const;

  /// Write `chrome_json()` to `path`. Throws `IoError` on failure.
  void write_chrome_trace(const std::filesystem::path& path) const;

  /// Write to the `SPIO_TRACE` path if the variable is set; no-op
  /// otherwise. Called at process exit and by the instrumented
  /// collectives so a traced job always leaves a loadable file.
  void flush_env() const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    const char* arg_name;  // null = no args
    double ts_us;
    double dur_us;  // < 0 = instant event
    std::uint64_t arg;
    int rank;
  };

  /// One rank thread's event buffer. Appends lock `mu` (uncontended:
  /// only the owning thread appends; only flush/clear contend).
  struct Buffer {
    mutable std::mutex mu;
    std::vector<Event> events;
  };

  Tracer() = default;

  Buffer& local_buffer();

  mutable std::mutex mu_;  // guards buffers_ registration
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII span: opens at construction, closes at destruction (or at an
/// explicit early `end()`). The tracer only sees the span when
/// collection is enabled; the always-on flight recorder keeps a
/// begin/end record either way (the `perf`-label floor test bounds the
/// combined disabled-path cost).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : name_(name),
        cat_(cat),
        qid_(current_query_id()),
        traced_(enabled()) {
    if (traced_) t0_ = now_us();
    flight_record(FlightType::kSpanBegin, name_, qid_);
  }
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close the span now (idempotent).
  void end() {
    if (done_) return;
    done_ = true;
    flight_record(FlightType::kSpanEnd, name_, qid_);
    if (traced_)
      Tracer::instance().record_complete(name_, cat_, t0_, now_us() - t0_,
                                         qid_);
  }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t qid_;  // active query at open (flight `a` word / trace arg)
  double t0_ = 0;
  bool traced_;
  bool done_ = false;
};

/// Sequential-phase span for straight-line pipelines (the writer's eight
/// steps): `begin` closes the previous phase and opens the next, so one
/// object traces a whole function without nesting scopes.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* cat) : cat_(cat) {}
  ~PhaseSpan() { end(); }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void begin(const char* name) {
    end();
    name_ = name;
    qid_ = current_query_id();
    traced_ = enabled();
    if (traced_) t0_ = now_us();
    flight_record(FlightType::kSpanBegin, name_, qid_);
  }

  void end() {
    if (!name_) return;
    flight_record(FlightType::kSpanEnd, name_, qid_);
    if (traced_)
      Tracer::instance().record_complete(name_, cat_, t0_, now_us() - t0_,
                                         qid_);
    name_ = nullptr;
  }

 private:
  const char* cat_;
  const char* name_ = nullptr;
  std::uint64_t qid_ = 0;
  double t0_ = 0;
  bool traced_ = false;
};

}  // namespace spio::obs
