file(REMOVE_RECURSE
  "CMakeFiles/spio_util.dir/checksum.cpp.o"
  "CMakeFiles/spio_util.dir/checksum.cpp.o.d"
  "CMakeFiles/spio_util.dir/rng.cpp.o"
  "CMakeFiles/spio_util.dir/rng.cpp.o.d"
  "CMakeFiles/spio_util.dir/serialize.cpp.o"
  "CMakeFiles/spio_util.dir/serialize.cpp.o.d"
  "CMakeFiles/spio_util.dir/stats.cpp.o"
  "CMakeFiles/spio_util.dir/stats.cpp.o.d"
  "CMakeFiles/spio_util.dir/table.cpp.o"
  "CMakeFiles/spio_util.dir/table.cpp.o.d"
  "CMakeFiles/spio_util.dir/temp_dir.cpp.o"
  "CMakeFiles/spio_util.dir/temp_dir.cpp.o.d"
  "CMakeFiles/spio_util.dir/units.cpp.o"
  "CMakeFiles/spio_util.dir/units.cpp.o.d"
  "libspio_util.a"
  "libspio_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
