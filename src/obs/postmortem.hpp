#pragma once

/// \file postmortem.hpp
/// Automatic fault postmortems (docs/OBSERVABILITY.md).
///
/// On any failure path — a `checked_write_file` retry budget exhausted,
/// a reliable-exchange without an ACK, an injected phase death, a
/// distributed read hitting an incomplete dataset, or a fatal signal —
/// the failing layer dumps a `postmortem.spio.json` bundle next to the
/// dataset:
///
///   {
///     "format": "spio.postmortem", "version": 1,
///     "reason": "...exception text...",
///     "failed_rank": 2, "phase": "data_write", "job_ranks": 4,
///     "metrics": { ...live MetricsRegistry snapshot... },
///     "flight_recorder": {
///       "capacity": 1024,
///       "ranks": [{"rank": 0, "recorded": n, "dropped": d,
///                  "events": [{"ts_us": ..., "type": "send",
///                              "name": "...", "a": ..., "b": ...,
///                              "detail": ...}, ...]}, ...]
///     },
///     ...caller sections (write_stats, config, fault_plan)...
///   }
///
/// `spio_trace --postmortem <bundle|dataset-dir>` renders a per-rank
/// timeline of the last events before death; `spio_trace --check`
/// validates the bundle. `check_and_repair(dir, /*remove_partial=*/true)`
/// and a successful journaled rewrite both remove stale bundles, so
/// recovered datasets stay byte-identical to golden runs.

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"

namespace spio::obs {

/// File name of the postmortem bundle inside a dataset directory.
inline constexpr const char* kPostmortemFile = "postmortem.spio.json";

/// Context a failing layer hands to `save_postmortem`. `sections` are
/// caller-supplied JSON objects appended at the top level (the writer
/// adds `write_stats`, `config` and `fault_plan`).
struct PostmortemInfo {
  std::string reason;
  int failed_rank = -1;
  std::string phase;
  int job_ranks = 0;
  std::vector<std::pair<std::string, JsonValue>> sections;
};

/// Dump the bundle (ring contents + live metric snapshot + caller
/// sections) to `dir / kPostmortemFile`. Serialized process-wide; when
/// several ranks fail, the last writer wins. Never throws — a
/// postmortem must not mask the original failure — and returns whether
/// the bundle was written.
bool save_postmortem(const std::filesystem::path& dir,
                     const PostmortemInfo& info) noexcept;

bool postmortem_present(const std::filesystem::path& dir);

/// Load and format-check the bundle. Throws `IoError` / `FormatError`.
JsonValue load_postmortem(const std::filesystem::path& dir);

/// The flight recorder rings as the bundle's `flight_recorder` section.
JsonValue flight_to_json(const std::vector<FlightRingSnapshot>& rings);

/// Structural validation used by `spio_trace --check`: returns one
/// human-readable problem per violation (empty = valid).
std::vector<std::string> validate_postmortem(const JsonValue& doc);

/// Best-effort black box on fatal signals (SEGV/BUS/FPE/ILL/ABRT):
/// dump a bundle to the registered directory, then re-raise with the
/// default disposition. The dump path is not async-signal-safe — it is
/// a last-gasp diagnostic, not a recovery mechanism. Idempotent.
void install_crash_handler();

/// Where the crash handler writes its bundle (typically the dataset
/// directory of the job in flight). Empty disables the dump.
void set_crash_dump_dir(const std::filesystem::path& dir);

}  // namespace spio::obs
