file(REMOVE_RECURSE
  "../bench/fig11_adaptive"
  "../bench/fig11_adaptive.pdb"
  "CMakeFiles/fig11_adaptive.dir/fig11_adaptive.cpp.o"
  "CMakeFiles/fig11_adaptive.dir/fig11_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
