#pragma once

/// \file message.hpp
/// Message envelope and wildcard constants for the simmpi runtime.
///
/// simmpi is a from-scratch, in-process message-passing runtime with
/// MPI-shaped semantics: N ranks run as threads inside one process and
/// communicate through tagged point-to-point messages and collectives. The
/// spio library is written against this interface; porting it to real MPI
/// is a mechanical translation (each simmpi call has a direct MPI
/// counterpart, noted in comm.hpp).

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace simmpi {

/// Wildcard source for receives (matches MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receives (matches MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// A delivered message: origin rank, tag, and the raw payload bytes.
struct Message {
  int src = kAnySource;
  int tag = kAnyTag;
  std::vector<std::byte> payload;
};

/// Thrown in ranks that are blocked in the runtime when another rank has
/// failed with an exception: the runtime aborts the whole job, mirroring
/// the default MPI error handler (MPI_ERRORS_ARE_FATAL) without deadlock.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("simmpi: job aborted by another rank") {}
};

}  // namespace simmpi
