#include "simd/position_mirror.hpp"

#include <cstring>
#include <limits>

#include "util/error.hpp"

namespace spio {

namespace {

/// Widest kernel lane count we pad for (AVX2 f64x4 today; 8 leaves room
/// for an AVX-512 TU without a mirror format change).
constexpr std::size_t kPadLanes = 8;

}  // namespace

std::uint64_t PositionMirror::bytes_for_count(std::size_t count) {
  std::size_t padded = (count + kPadLanes - 1) / kPadLanes * kPadLanes;
  if (padded == 0) padded = kPadLanes;
  return static_cast<std::uint64_t>(3 * padded * sizeof(double));
}

std::shared_ptr<const PositionMirror> PositionMirror::build(
    std::span<const std::byte> bytes, std::size_t record_size,
    std::size_t position_offset) {
  SPIO_EXPECTS(record_size > 0 && bytes.size() % record_size == 0);
  SPIO_EXPECTS(position_offset + 3 * sizeof(double) <= record_size);
  const std::size_t n = bytes.size() / record_size;
  const std::size_t padded = (n + kPadLanes - 1) / kPadLanes * kPadLanes;
  auto mirror = std::shared_ptr<PositionMirror>(
      new PositionMirror(n, padded == 0 ? kPadLanes : padded));

  double* xs = mirror->lanes_.get();
  double* ys = xs + mirror->padded_;
  double* zs = ys + mirror->padded_;
  const std::byte* p = bytes.data() + position_offset;
  for (std::size_t i = 0; i < n; ++i, p += record_size) {
    double v[3];
    std::memcpy(v, p, sizeof v);
    xs[i] = v[0];
    ys[i] = v[1];
    zs[i] = v[2];
  }
  const double pad = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = n; i < mirror->padded_; ++i) {
    xs[i] = pad;
    ys[i] = pad;
    zs[i] = pad;
  }
  return mirror;
}

}  // namespace spio
