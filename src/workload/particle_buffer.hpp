#pragma once

/// \file particle_buffer.hpp
/// AoS particle container: a schema plus a flat byte buffer of records.
/// This is the unit of exchange throughout the library — patches hand one
/// to the writer, aggregators assemble one, readers return one.

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "util/box.hpp"
#include "util/error.hpp"
#include "util/vec3.hpp"
#include "workload/schema.hpp"

namespace spio {

class ParticleBuffer {
 public:
  explicit ParticleBuffer(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return data_.size() / record_size_; }
  bool empty() const { return data_.empty(); }
  std::size_t record_size() const { return record_size_; }
  std::size_t byte_size() const { return data_.size(); }

  void reserve(std::size_t particles) {
    data_.reserve(particles * record_size_);
  }
  /// Return over-reserved capacity to the allocator (used after a
  /// selective query reserved for the worst case).
  void shrink_to_fit() { data_.shrink_to_fit(); }
  void clear() { data_.clear(); }

  /// Append a zero-initialized record and return a writable view of it.
  std::span<std::byte> append_uninitialized();

  /// Append a full record copied from raw bytes (size must equal
  /// record_size()).
  void append_record(std::span<const std::byte> record);

  /// Append record `i` of `other` (schemas must match).
  void append_from(const ParticleBuffer& other, std::size_t i);

  /// Append all records held in `bytes` (a multiple of record_size()).
  void append_bytes(std::span<const std::byte> bytes);

  /// Append `count` whole records starting at `p` — the fused read
  /// kernels' inner-loop appender. Unchecked (those kernels address by
  /// record index, so the payload is whole records by construction) and
  /// header-inline: a short matching run must cost one `memcpy`, not an
  /// out-of-line call plus a divisibility check.
  void append_records(const std::byte* p, std::size_t count) {
    data_.insert(data_.end(), p, p + count * record_size_);
  }

  /// Read-only view of record `i`.
  std::span<const std::byte> record(std::size_t i) const;
  /// Writable view of record `i`.
  std::span<std::byte> record(std::size_t i);

  /// The whole AoS payload, for sends and file writes.
  std::span<const std::byte> bytes() const { return data_; }
  /// Move the payload out (leaves the buffer empty).
  std::vector<std::byte> take_bytes();
  /// Replace the payload (size must be a multiple of record_size()).
  void adopt_bytes(std::vector<std::byte> bytes);

  // ---- typed field access ----

  Vec3d position(std::size_t i) const;
  void set_position(std::size_t i, const Vec3d& p);

  /// Value of component `comp` of f64 field `field` in record `i`.
  double get_f64(std::size_t i, std::size_t field, std::size_t comp = 0) const;
  void set_f64(std::size_t i, std::size_t field, std::size_t comp, double v);
  float get_f32(std::size_t i, std::size_t field, std::size_t comp = 0) const;
  void set_f32(std::size_t i, std::size_t field, std::size_t comp, float v);

  /// Swap records `a` and `b` in place (used by the LOD shuffle).
  void swap_records(std::size_t a, std::size_t b);

  /// Drop all records past the first `count` (no-op if already smaller).
  void truncate(std::size_t count);

  /// Tight bounding box of all particle positions; `Box3::empty()` if the
  /// buffer is empty.
  Box3 bounds() const;

 private:
  const std::byte* field_ptr(std::size_t i, std::size_t field,
                             std::size_t comp, std::size_t elem_size) const;
  std::byte* field_ptr(std::size_t i, std::size_t field, std::size_t comp,
                       std::size_t elem_size);

  Schema schema_;
  std::size_t record_size_;
  std::vector<std::byte> data_;
};

}  // namespace spio
