#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "core/metadata.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/serialize.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

TempDir write_sample(std::uint64_t per_rank = 200, bool checksums = true) {
  TempDir dir("spio-validate");
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 1, 1};
  cfg.write_checksums = checksums;
  simmpi::run(4, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), per_rank,
        stream_seed(55, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * per_rank);
    write_dataset(comm, decomp, local, cfg);
  });
  return dir;
}

TEST(Validate, FreshDatasetIsClean) {
  const TempDir dir = write_sample();
  const ValidationReport shallow = validate_dataset(dir.path(), false);
  EXPECT_TRUE(shallow.ok()) << shallow.errors.front();
  EXPECT_TRUE(shallow.warnings.empty());
  const ValidationReport deep = validate_dataset(dir.path(), true);
  EXPECT_TRUE(deep.ok()) << deep.errors.front();
}

TEST(Validate, MissingDataFileDetected) {
  const TempDir dir = write_sample();
  const auto meta = DatasetMetadata::load(dir.path());
  std::filesystem::remove(dir.path() / meta.files[0].file_name());
  const ValidationReport report = validate_dataset(dir.path());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].find("missing"), std::string::npos);
}

TEST(Validate, TruncatedDataFileDetected) {
  const TempDir dir = write_sample();
  const auto meta = DatasetMetadata::load(dir.path());
  const auto victim = dir.path() / meta.files[1].file_name();
  auto bytes = read_file(victim);
  bytes.resize(bytes.size() - 100);
  write_file(victim, bytes);
  const ValidationReport report = validate_dataset(dir.path());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].find("bytes"), std::string::npos);
}

TEST(Validate, CorruptMetadataReported) {
  const TempDir dir = write_sample();
  auto bytes = read_file(dir.file(DatasetMetadata::kFileName));
  bytes.resize(10);
  write_file(dir.file(DatasetMetadata::kFileName), bytes);
  const ValidationReport report = validate_dataset(dir.path());
  ASSERT_FALSE(report.ok());
}

TEST(Validate, MissingMetadataReported) {
  TempDir dir("spio-validate-empty");
  const ValidationReport report = validate_dataset(dir.path());
  EXPECT_FALSE(report.ok());
}

TEST(Validate, DeepCheckCatchesSwappedFiles) {
  // Swap the contents of two data files: sizes still match (same count),
  // so only the deep check notices particles outside their bounds.
  // Checksums disabled to exercise the per-particle detection path.
  const TempDir dir = write_sample(200, /*checksums=*/false);
  const auto meta = DatasetMetadata::load(dir.path());
  ASSERT_EQ(meta.files.size(), 2u);
  ASSERT_EQ(meta.files[0].particle_count, meta.files[1].particle_count);
  const auto a = dir.path() / meta.files[0].file_name();
  const auto b = dir.path() / meta.files[1].file_name();
  const auto ab = read_file(a);
  const auto bb = read_file(b);
  write_file(a, bb);
  write_file(b, ab);

  EXPECT_TRUE(validate_dataset(dir.path(), false).ok());
  const ValidationReport deep = validate_dataset(dir.path(), true);
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.errors[0].find("outside"), std::string::npos);
}

TEST(Validate, ChecksumCatchesSwappedFiles) {
  // With checksums recorded, the same swap is attributed to corruption by
  // the checksum pass before any particle is inspected.
  const TempDir dir = write_sample();
  const auto meta = DatasetMetadata::load(dir.path());
  ASSERT_EQ(meta.files.size(), 2u);
  const auto a = dir.path() / meta.files[0].file_name();
  const auto b = dir.path() / meta.files[1].file_name();
  const auto ab = read_file(a);
  const auto bb = read_file(b);
  write_file(a, bb);
  write_file(b, ab);

  EXPECT_TRUE(validate_dataset(dir.path(), false).ok());
  const ValidationReport deep = validate_dataset(dir.path(), true);
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.errors[0].find("checksum"), std::string::npos);
}

TEST(Validate, DeepCheckCatchesMutatedValues) {
  // Flip a density value beyond its recorded range. Checksums disabled to
  // exercise the field-range detection path.
  const TempDir dir = write_sample(200, /*checksums=*/false);
  const auto meta = DatasetMetadata::load(dir.path());
  const auto victim = dir.path() / meta.files[0].file_name();
  auto bytes = read_file(victim);
  const std::size_t density_off = meta.schema.offset(
      meta.schema.index_of("density"));
  const double absurd = 1e12;
  std::memcpy(bytes.data() + density_off, &absurd, sizeof(double));
  write_file(victim, bytes);

  const ValidationReport deep = validate_dataset(dir.path(), true);
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.errors[0].find("range"), std::string::npos);
}

TEST(Validate, ZeroParticleFileIsAWarning) {
  // Hand-craft metadata referencing an empty file.
  TempDir dir("spio-validate-zero");
  DatasetMetadata m;
  m.schema = Schema::position_only();
  m.domain = Box3::unit();
  m.has_field_ranges = false;
  m.total_particles = 0;
  FileRecord f;
  f.partition_id = 0;
  f.aggregator_rank = 0;
  f.particle_count = 0;
  f.bounds = Box3::unit();
  m.files.push_back(f);
  m.save(dir.path());
  write_file(dir.path() / f.file_name(), {});
  const ValidationReport report = validate_dataset(dir.path());
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("no particles"), std::string::npos);
}

}  // namespace
}  // namespace spio
