#include "core/query_plan/kd_tree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

/// Leaves hold up to this many boxes: small enough that the per-member
/// exact tests stay cheap, large enough to keep the node count (and the
/// metadata footer) around F/2 entries.
constexpr std::uint32_t kLeafSize = 4;

double axis_of(const Vec3d& v, int a) {
  return a == 0 ? v.x : a == 1 ? v.y : v.z;
}

double min_dist_sq(const Vec3d& p, const Box3& b) {
  const auto clamp_gap = [](double v, double lo, double hi) {
    return v < lo ? lo - v : v > hi ? v - hi : 0.0;
  };
  const double dx = clamp_gap(p.x, b.lo.x, b.hi.x);
  const double dy = clamp_gap(p.y, b.lo.y, b.hi.y);
  const double dz = clamp_gap(p.z, b.lo.z, b.hi.z);
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace

BoxKdTree BoxKdTree::build(const std::vector<Box3>& boxes) {
  BoxKdTree t;
  t.boxes_ = boxes;
  if (boxes.empty()) return t;
  for (const Box3& b : boxes) SPIO_EXPECTS(!b.is_empty());

  std::vector<std::int32_t> order(boxes.size());
  for (std::size_t i = 0; i < boxes.size(); ++i)
    order[i] = static_cast<std::int32_t>(i);

  t.nodes_.reserve(2 * boxes.size() / kLeafSize + 2);
  t.leaf_files_.reserve(boxes.size());

  // Recursive preorder build over order[lo, hi). Splits at the median of
  // the widest centroid axis; the (centroid, file index) comparator is a
  // strict total order, so both sides — and therefore the serialized
  // footer — are deterministic across standard libraries.
  const std::function<void(std::size_t, std::size_t)> rec =
      [&](std::size_t lo, std::size_t hi) {
        const auto id = static_cast<std::size_t>(t.nodes_.size());
        t.nodes_.emplace_back();
        Box3 merged = Box3::empty();
        for (std::size_t i = lo; i < hi; ++i)
          merged.extend(boxes[static_cast<std::size_t>(order[i])]);
        t.nodes_[id].bounds = merged;

        if (hi - lo <= kLeafSize) {
          Node& n = t.nodes_[id];
          n.first = static_cast<std::uint32_t>(t.leaf_files_.size());
          n.count = static_cast<std::uint32_t>(hi - lo);
          for (std::size_t i = lo; i < hi; ++i)
            t.leaf_files_.push_back(order[i]);
          return;
        }

        Box3 centroids = Box3::empty();
        for (std::size_t i = lo; i < hi; ++i)
          centroids.extend(boxes[static_cast<std::size_t>(order[i])].center());
        const Vec3d spread = centroids.size();
        int axis = 0;
        if (spread.y > axis_of(spread, axis)) axis = 1;
        if (spread.z > axis_of(spread, axis)) axis = 2;

        const auto by_centroid = [&](std::int32_t a, std::int32_t b) {
          const double ca =
              axis_of(boxes[static_cast<std::size_t>(a)].center(), axis);
          const double cb =
              axis_of(boxes[static_cast<std::size_t>(b)].center(), axis);
          return ca != cb ? ca < cb : a < b;
        };
        const std::size_t mid = lo + (hi - lo) / 2;
        std::nth_element(order.begin() + static_cast<std::ptrdiff_t>(lo),
                         order.begin() + static_cast<std::ptrdiff_t>(mid),
                         order.begin() + static_cast<std::ptrdiff_t>(hi),
                         by_centroid);

        t.nodes_[id].left = static_cast<std::int32_t>(t.nodes_.size());
        rec(lo, mid);
        t.nodes_[id].right = static_cast<std::int32_t>(t.nodes_.size());
        rec(mid, hi);
      };
  rec(0, boxes.size());
  return t;
}

const Box3& BoxKdTree::root_bounds() const {
  SPIO_EXPECTS(!empty());
  return nodes_[0].bounds;
}

template <typename Overlap>
std::vector<int> BoxKdTree::query_impl(const Box3& box,
                                       Overlap&& overlap) const {
  std::vector<int> out;
  if (empty() || !overlap(nodes_[0].bounds)) return out;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (n.is_leaf()) {
      // The node box is a union; each member still needs its exact test.
      for (std::uint32_t i = 0; i < n.count; ++i) {
        const std::int32_t fi = leaf_files_[n.first + i];
        if (overlap(boxes_[static_cast<std::size_t>(fi)])) out.push_back(fi);
      }
      continue;
    }
    if (overlap(nodes_[static_cast<std::size_t>(n.left)].bounds))
      stack.push_back(n.left);
    if (overlap(nodes_[static_cast<std::size_t>(n.right)].bounds))
      stack.push_back(n.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> BoxKdTree::query(const Box3& box) const {
  return query_impl(box, [&](const Box3& b) { return b.overlaps(box); });
}

std::vector<int> BoxKdTree::query_closed(const Box3& box) const {
  return query_impl(box,
                    [&](const Box3& b) { return b.overlaps_closed(box); });
}

void BoxKdTree::visit_nearest(
    const Vec3d& p,
    const std::function<bool(int file, double min_dist)>& visit) const {
  SPIO_EXPECTS(visit != nullptr);
  if (empty()) return;
  struct Entry {
    double dist_sq;
    std::int32_t node;  // -1: `file` is a resolved member, ready to visit
    std::int32_t file;
    bool operator>(const Entry& o) const { return dist_sq > o.dist_sq; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({min_dist_sq(p, nodes_[0].bounds), 0, -1});
  while (!heap.empty()) {
    const Entry e = heap.top();
    heap.pop();
    if (e.node < 0) {
      if (!visit(e.file, std::sqrt(e.dist_sq))) return;
      continue;
    }
    const Node& n = nodes_[static_cast<std::size_t>(e.node)];
    if (n.is_leaf()) {
      // Re-rank each member by its own box: the leaf's union distance is
      // only a lower bound.
      for (std::uint32_t i = 0; i < n.count; ++i) {
        const std::int32_t fi = leaf_files_[n.first + i];
        heap.push(
            {min_dist_sq(p, boxes_[static_cast<std::size_t>(fi)]), -1, fi});
      }
      continue;
    }
    heap.push({min_dist_sq(p, nodes_[static_cast<std::size_t>(n.left)].bounds),
               n.left, -1});
    heap.push(
        {min_dist_sq(p, nodes_[static_cast<std::size_t>(n.right)].bounds),
         n.right, -1});
  }
}

void BoxKdTree::serialize(BinaryWriter& w) const {
  w.write<std::uint32_t>(static_cast<std::uint32_t>(nodes_.size()));
  w.write<std::uint32_t>(static_cast<std::uint32_t>(leaf_files_.size()));
  for (const Node& n : nodes_) {
    w.write<double>(n.bounds.lo.x);
    w.write<double>(n.bounds.lo.y);
    w.write<double>(n.bounds.lo.z);
    w.write<double>(n.bounds.hi.x);
    w.write<double>(n.bounds.hi.y);
    w.write<double>(n.bounds.hi.z);
    w.write<std::int32_t>(n.left);
    w.write<std::int32_t>(n.right);
    w.write<std::uint32_t>(n.first);
    w.write<std::uint32_t>(n.count);
  }
  for (const std::int32_t fi : leaf_files_) w.write<std::int32_t>(fi);
}

BoxKdTree BoxKdTree::deserialize(BinaryReader& r,
                                 const std::vector<Box3>& boxes) {
  BoxKdTree t;
  t.boxes_ = boxes;
  const auto node_count = r.read<std::uint32_t>();
  const auto leaf_count = r.read<std::uint32_t>();
  SPIO_CHECK(leaf_count == boxes.size(), FormatError,
             "k-d footer indexes " << leaf_count << " files but metadata has "
                                   << boxes.size());
  SPIO_CHECK(node_count <= 2 * boxes.size() + 1, FormatError,
             "k-d footer claims " << node_count << " nodes for "
                                  << boxes.size() << " files");
  SPIO_CHECK((node_count == 0) == boxes.empty(), FormatError,
             "k-d footer node count inconsistent with the file table");
  t.nodes_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    Node n;
    n.bounds.lo.x = r.read<double>();
    n.bounds.lo.y = r.read<double>();
    n.bounds.lo.z = r.read<double>();
    n.bounds.hi.x = r.read<double>();
    n.bounds.hi.y = r.read<double>();
    n.bounds.hi.z = r.read<double>();
    n.left = r.read<std::int32_t>();
    n.right = r.read<std::int32_t>();
    n.first = r.read<std::uint32_t>();
    n.count = r.read<std::uint32_t>();
    SPIO_CHECK(!n.bounds.is_empty(), FormatError,
               "k-d footer node " << i << " has an empty box");
    if (n.left >= 0 || n.right >= 0) {
      // Preorder: the left child directly follows its parent, the right
      // child follows the whole left subtree.
      SPIO_CHECK(n.left == static_cast<std::int32_t>(i) + 1 &&
                     n.right > n.left &&
                     static_cast<std::uint32_t>(n.right) < node_count,
                 FormatError,
                 "k-d footer node " << i << " has malformed child links");
      SPIO_CHECK(n.count == 0, FormatError,
                 "k-d footer node " << i << " is both leaf and internal");
    } else {
      SPIO_CHECK(n.count >= 1 &&
                     std::uint64_t{n.first} + n.count <= leaf_count,
                 FormatError,
                 "k-d footer node " << i << " has an invalid leaf range");
    }
    t.nodes_.push_back(n);
  }
  std::vector<bool> seen(boxes.size(), false);
  t.leaf_files_.reserve(leaf_count);
  for (std::uint32_t i = 0; i < leaf_count; ++i) {
    const auto fi = r.read<std::int32_t>();
    SPIO_CHECK(fi >= 0 && static_cast<std::size_t>(fi) < boxes.size() &&
                   !seen[static_cast<std::size_t>(fi)],
               FormatError,
               "k-d footer leaf table repeats or exceeds the file indices");
    seen[static_cast<std::size_t>(fi)] = true;
    t.leaf_files_.push_back(fi);
  }

  // Semantic validation: every recorded box must be the exact union of
  // its subtree's file boxes, or pruning would silently drop hits.
  if (!t.nodes_.empty()) {
    std::vector<bool> reached(t.nodes_.size(), false);
    const std::function<Box3(std::int32_t)> check =
        [&](std::int32_t id) -> Box3 {
      reached[static_cast<std::size_t>(id)] = true;
      const Node& n = t.nodes_[static_cast<std::size_t>(id)];
      Box3 merged = Box3::empty();
      if (n.is_leaf()) {
        for (std::uint32_t i = 0; i < n.count; ++i)
          merged.extend(
              boxes[static_cast<std::size_t>(t.leaf_files_[n.first + i])]);
      } else {
        merged.extend(check(n.left));
        merged.extend(check(n.right));
      }
      SPIO_CHECK(merged == n.bounds, FormatError,
                 "k-d footer node " << id
                                    << " box disagrees with its subtree");
      return merged;
    };
    check(0);
    for (std::size_t i = 0; i < t.nodes_.size(); ++i)
      SPIO_CHECK(reached[i], FormatError,
                 "k-d footer node " << i << " is unreachable from the root");
  }
  return t;
}

}  // namespace spio
