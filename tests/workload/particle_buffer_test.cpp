#include "workload/particle_buffer.hpp"

#include <gtest/gtest.h>

namespace spio {
namespace {

TEST(ParticleBuffer, StartsEmpty) {
  ParticleBuffer buf(Schema::uintah());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.record_size(), 124u);
}

TEST(ParticleBuffer, AppendAndReadPositions) {
  ParticleBuffer buf(Schema::uintah());
  buf.append_uninitialized();
  buf.set_position(0, {1, 2, 3});
  buf.append_uninitialized();
  buf.set_position(1, {4, 5, 6});
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.position(0), Vec3d(1, 2, 3));
  EXPECT_EQ(buf.position(1), Vec3d(4, 5, 6));
}

TEST(ParticleBuffer, TypedFieldAccess) {
  ParticleBuffer buf(Schema::uintah());
  buf.append_uninitialized();
  const auto density = buf.schema().index_of("density");
  const auto stress = buf.schema().index_of("stress");
  const auto type = buf.schema().index_of("type");
  buf.set_f64(0, density, 0, 997.0);
  buf.set_f64(0, stress, 4, -12.5);
  buf.set_f32(0, type, 0, 2.0f);
  EXPECT_EQ(buf.get_f64(0, density), 997.0);
  EXPECT_EQ(buf.get_f64(0, stress, 4), -12.5);
  EXPECT_EQ(buf.get_f32(0, type), 2.0f);
  // Untouched components remain zero-initialized.
  EXPECT_EQ(buf.get_f64(0, stress, 0), 0.0);
}

TEST(ParticleBuffer, AppendRecordCopiesBytes) {
  ParticleBuffer a(Schema::position_only());
  a.append_uninitialized();
  a.set_position(0, {7, 8, 9});
  ParticleBuffer b(Schema::position_only());
  b.append_record(a.record(0));
  EXPECT_EQ(b.position(0), Vec3d(7, 8, 9));
}

TEST(ParticleBuffer, AppendFromOtherBuffer) {
  ParticleBuffer a(Schema::uintah());
  for (int i = 0; i < 3; ++i) {
    a.append_uninitialized();
    a.set_position(static_cast<std::size_t>(i), Vec3d(i, i, i));
  }
  ParticleBuffer b(Schema::uintah());
  b.append_from(a, 2);
  b.append_from(a, 0);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.position(0), Vec3d(2, 2, 2));
  EXPECT_EQ(b.position(1), Vec3d(0, 0, 0));
}

TEST(ParticleBuffer, AppendBytesRequiresWholeRecords) {
  ParticleBuffer buf(Schema::position_only());
  std::vector<std::byte> bad(25);  // one record is 24 bytes
  EXPECT_THROW(buf.append_bytes(bad), FormatError);
  std::vector<std::byte> good(48);
  buf.append_bytes(good);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(ParticleBuffer, TakeAndAdoptBytesRoundTrip) {
  ParticleBuffer a(Schema::position_only());
  a.append_uninitialized();
  a.set_position(0, {1, 2, 3});
  auto bytes = a.take_bytes();
  EXPECT_TRUE(a.empty());
  ParticleBuffer b(Schema::position_only());
  b.adopt_bytes(std::move(bytes));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.position(0), Vec3d(1, 2, 3));
}

TEST(ParticleBuffer, AdoptRejectsPartialRecords) {
  ParticleBuffer b(Schema::position_only());
  EXPECT_THROW(b.adopt_bytes(std::vector<std::byte>(10)), FormatError);
}

TEST(ParticleBuffer, SwapRecords) {
  ParticleBuffer buf(Schema::uintah());
  const auto id = Schema::uintah().index_of("id");
  for (int i = 0; i < 2; ++i) {
    buf.append_uninitialized();
    buf.set_position(static_cast<std::size_t>(i), Vec3d(i, 0, 0));
    buf.set_f64(static_cast<std::size_t>(i), id, 0, 100.0 + i);
  }
  buf.swap_records(0, 1);
  EXPECT_EQ(buf.position(0), Vec3d(1, 0, 0));
  EXPECT_EQ(buf.get_f64(0, id), 101.0);
  EXPECT_EQ(buf.position(1), Vec3d(0, 0, 0));
  buf.swap_records(1, 1);  // self-swap is a no-op
  EXPECT_EQ(buf.get_f64(1, id), 100.0);
}

TEST(ParticleBuffer, BoundsOfEmptyIsEmpty) {
  EXPECT_TRUE(ParticleBuffer(Schema::uintah()).bounds().is_empty());
}

TEST(ParticleBuffer, BoundsCoverAllPositions) {
  ParticleBuffer buf(Schema::position_only());
  const Vec3d pts[] = {{0, 5, 2}, {3, 1, 9}, {-1, 2, 2}};
  for (std::size_t i = 0; i < 3; ++i) {
    buf.append_uninitialized();
    buf.set_position(i, pts[i]);
  }
  const Box3 b = buf.bounds();
  EXPECT_EQ(b.lo, Vec3d(-1, 1, 2));
  EXPECT_EQ(b.hi, Vec3d(3, 5, 9));
}

TEST(ParticleBuffer, ByteSizeTracksRecords) {
  ParticleBuffer buf(Schema::uintah());
  buf.append_uninitialized();
  buf.append_uninitialized();
  EXPECT_EQ(buf.byte_size(), 2 * 124u);
  EXPECT_EQ(buf.bytes().size(), 2 * 124u);
}

}  // namespace
}  // namespace spio
