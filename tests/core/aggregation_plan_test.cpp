#include "core/aggregation_plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/generators.hpp"

namespace spio {
namespace {

TEST(NonAdaptivePlan, FactorOneMakesEveryRankItsOwnAggregator) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {1, 1, 1}, AggregatorPlacement::kUniform);
  EXPECT_EQ(plan.partition_count(), 8);
  EXPECT_TRUE(plan.aligned());
  for (int r = 0; r < 8; ++r) {
    const int p = plan.partition_owned_by(r);
    ASSERT_GE(p, 0);
    // The only sender of each partition is a single rank, and each rank
    // targets exactly one partition.
    EXPECT_EQ(plan.senders_of(p).size(), 1u);
    EXPECT_EQ(plan.targets_of(r).size(), 1u);
  }
}

TEST(NonAdaptivePlan, GroupsOfEightWithFactorTwo) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 4});
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {2, 2, 2}, AggregatorPlacement::kUniform);
  EXPECT_EQ(plan.partition_count(), 8);
  for (int p = 0; p < plan.partition_count(); ++p)
    EXPECT_EQ(plan.senders_of(p).size(), 8u);
  // Every rank sends somewhere, to exactly one partition.
  std::set<int> all_senders;
  for (int p = 0; p < plan.partition_count(); ++p)
    for (int s : plan.senders_of(p)) {
      EXPECT_TRUE(all_senders.insert(s).second) << "rank in two partitions";
    }
  EXPECT_EQ(all_senders.size(), 64u);
}

TEST(NonAdaptivePlan, SendersAreSpatiallyCoherent) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {2, 2, 1}, AggregatorPlacement::kUniform);
  for (int p = 0; p < plan.partition_count(); ++p) {
    const Box3 pbox = plan.grid().partition_box(p);
    for (int s : plan.senders_of(p))
      EXPECT_TRUE(pbox.contains_box(decomp.patch(s)));
  }
}

TEST(NonAdaptivePlan, SenderAndTargetViewsAreConsistent) {
  const PatchDecomposition decomp(Box3::unit(), {6, 2, 2});
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {3, 2, 1}, AggregatorPlacement::kUniform);
  for (int p = 0; p < plan.partition_count(); ++p)
    for (int s : plan.senders_of(p)) {
      const auto& t = plan.targets_of(s);
      EXPECT_TRUE(std::find(t.begin(), t.end(), p) != t.end());
    }
  for (int r = 0; r < decomp.rank_count(); ++r)
    for (int p : plan.targets_of(r)) {
      const auto& s = plan.senders_of(p);
      EXPECT_TRUE(std::find(s.begin(), s.end(), r) != s.end());
    }
}

TEST(NonAdaptivePlan, PartitionOwnedByNonAggregatorIsMinusOne) {
  const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});
  const auto plan = AggregationPlan::non_adaptive(
      decomp, {2, 2, 2}, AggregatorPlacement::kUniform);
  // 2 partitions over 16 ranks -> aggregators 0 and 8.
  EXPECT_EQ(plan.partition_owned_by(0), 0);
  EXPECT_EQ(plan.partition_owned_by(8), 1);
  EXPECT_EQ(plan.partition_owned_by(5), -1);
}

std::vector<RankExtent> extents_for(const PatchDecomposition& decomp,
                                    const Box3& occupied_region,
                                    std::uint64_t per_rank) {
  std::vector<RankExtent> ex(static_cast<std::size_t>(decomp.rank_count()));
  for (int r = 0; r < decomp.rank_count(); ++r) {
    const Box3 live =
        Box3::intersection(decomp.patch(r), occupied_region);
    if (!live.is_empty()) {
      ex[static_cast<std::size_t>(r)] = {live, per_rank};
    } else {
      ex[static_cast<std::size_t>(r)] = {Box3::empty(), 0};
    }
  }
  return ex;
}

TEST(AdaptivePlan, CoversOnlyOccupiedRegion) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 4});
  // Particles only in the x < 0.5 half.
  const Box3 occupied({0, 0, 0}, {0.5, 1, 1});
  const auto plan = AggregationPlan::adaptive(
      decomp, {2, 2, 2}, AggregatorPlacement::kUniform,
      extents_for(decomp, occupied, 100));
  EXPECT_TRUE(plan.adaptive_mode());
  EXPECT_FALSE(plan.aligned());
  const Box3 region = plan.grid().region();
  EXPECT_LE(region.hi.x, 0.5 + 1e-9);
  // 32 occupied ranks, group size 8 -> 4 partitions.
  EXPECT_EQ(plan.partition_count(), 4);
}

TEST(AdaptivePlan, AggregatorsSpreadOverFullRankSpace) {
  // §6: "The adaptive grid places aggregators uniformly across the entire
  // rank space" — even ranks that hold no particles may aggregate.
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 4});
  const Box3 occupied({0, 0, 0}, {0.25, 1, 1});  // 16 occupied ranks
  const auto plan = AggregationPlan::adaptive(
      decomp, {2, 2, 2}, AggregatorPlacement::kUniform,
      extents_for(decomp, occupied, 50));
  EXPECT_EQ(plan.partition_count(), 2);
  EXPECT_EQ(plan.aggregator_of(0), 0);
  EXPECT_EQ(plan.aggregator_of(1), 32);  // spread over all 64 ranks
}

TEST(AdaptivePlan, EmptyRanksDoNotSend) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  const Box3 occupied({0, 0, 0}, {0.5, 1, 1});
  const auto plan = AggregationPlan::adaptive(
      decomp, {2, 2, 1}, AggregatorPlacement::kUniform,
      extents_for(decomp, occupied, 10));
  for (int r = 0; r < decomp.rank_count(); ++r) {
    const bool occupied_rank =
        decomp.patch(r).overlaps(occupied);
    if (!occupied_rank) {
      EXPECT_TRUE(plan.targets_of(r).empty()) << "rank " << r;
    } else {
      EXPECT_FALSE(plan.targets_of(r).empty()) << "rank " << r;
    }
  }
}

TEST(AdaptivePlan, AllEmptyDatasetYieldsSingleIdlePartition) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  std::vector<RankExtent> ex(4, {Box3::empty(), 0});
  const auto plan = AggregationPlan::adaptive(
      decomp, {2, 2, 1}, AggregatorPlacement::kUniform, ex);
  EXPECT_EQ(plan.partition_count(), 1);
  EXPECT_TRUE(plan.senders_of(0).empty());
}

TEST(AdaptivePlan, SinglePointDistributionHandled) {
  // All particles at one point: tight bounds are degenerate.
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  std::vector<RankExtent> ex(4, {Box3::empty(), 0});
  const Vec3d pt{0.1, 0.1, 0.5};
  ex[0] = {Box3(pt, pt), 42};
  const auto plan = AggregationPlan::adaptive(
      decomp, {2, 2, 1}, AggregatorPlacement::kUniform, ex);
  EXPECT_EQ(plan.partition_count(), 1);
  ASSERT_EQ(plan.senders_of(0).size(), 1u);
  EXPECT_EQ(plan.senders_of(0)[0], 0);
  // The grid must locate the point inside its (padded) region.
  EXPECT_EQ(plan.grid().partition_of_point(pt), 0);
}

TEST(AdaptivePlan, PartitionCountScalesWithOccupiedRanks) {
  const PatchDecomposition decomp(Box3::unit(), {8, 4, 4});  // 128 ranks
  for (const double coverage : {1.0, 0.5, 0.25, 0.125}) {
    const Box3 occ = workload::coverage_region(decomp.domain(), coverage);
    const auto plan = AggregationPlan::adaptive(
        decomp, {2, 2, 2}, AggregatorPlacement::kUniform,
        extents_for(decomp, occ, 10));
    const int occupied_ranks = static_cast<int>(128 * coverage);
    EXPECT_EQ(plan.partition_count(), (occupied_ranks + 7) / 8)
        << "coverage " << coverage;
  }
}

TEST(AdaptivePlan, RejectsWrongExtentTableSize) {
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 1});
  std::vector<RankExtent> ex(3);
  EXPECT_THROW(AggregationPlan::adaptive(decomp, {1, 1, 1},
                                         AggregatorPlacement::kUniform, ex),
               ConfigError);
}

TEST(PlanPlacement, PackedVsUniform) {
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  const auto uniform = AggregationPlan::non_adaptive(
      decomp, {2, 2, 1}, AggregatorPlacement::kUniform);
  const auto packed = AggregationPlan::non_adaptive(
      decomp, {2, 2, 1}, AggregatorPlacement::kPacked);
  EXPECT_EQ(uniform.aggregators(), (std::vector<int>{0, 4, 8, 12}));
  EXPECT_EQ(packed.aggregators(), (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace spio
