#include "core/reader.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <optional>

#include "core/journal.hpp"
#include "core/read_engine.hpp"
#include "obs/access_profile.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/serialize.hpp"
#include "workload/decomposition.hpp"

namespace spio {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Return-side counters for one query (naming: docs/OBSERVABILITY.md).
/// The scan-side counters live in `read_data_file`, so query layers and
/// direct file readers never double-count.
void publish_returned(std::uint64_t particles, std::uint64_t bytes) {
  if (!obs::stats_enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("reader.particles_returned").add(particles);
  reg.counter("reader.bytes_returned").add(bytes);
  const std::uint64_t read = reg.counter("reader.bytes_read").value();
  const std::uint64_t ret = reg.counter("reader.bytes_returned").value();
  if (ret > 0)
    reg.gauge("reader.read_amplification")
        .set(static_cast<double>(read) / static_cast<double>(ret));
}

}  // namespace

ReadStats ReadStats::max_over(const ReadStats& a, const ReadStats& b) {
  ReadStats m;
  m.files_opened = a.files_opened + b.files_opened;
  m.bytes_read = a.bytes_read + b.bytes_read;
  m.particles_scanned = a.particles_scanned + b.particles_scanned;
  m.particles_returned = a.particles_returned + b.particles_returned;
  m.cache_hits = a.cache_hits + b.cache_hits;
  m.cache_misses = a.cache_misses + b.cache_misses;
  m.files_skipped = a.files_skipped + b.files_skipped;
  m.lod_bytes_skipped = a.lod_bytes_skipped + b.lod_bytes_skipped;
  m.file_io_seconds = std::max(a.file_io_seconds, b.file_io_seconds);
  m.exchange_seconds = std::max(a.exchange_seconds, b.exchange_seconds);
  return m;
}

Dataset::Dataset(std::filesystem::path dir, DatasetMetadata meta)
    : dir_(std::move(dir)), meta_(std::move(meta)) {
  // Attach the zone sidecar when the metadata promises one. Any failure
  // — missing, torn, corrupt, or belonging to another dataset — degrades
  // to zone-free planning (results stay exact, only pruning is lost);
  // the event is logged and counted so operators see the degradation.
  std::shared_ptr<const ZoneMapTable> zones;
  if (meta_.has_zone_maps) {
    try {
      auto table = std::make_shared<ZoneMapTable>(ZoneMapTable::load(dir_));
      SPIO_CHECK(zones_consistent(*table, meta_), FormatError,
                 "zone sidecar does not match the dataset metadata");
      zones = std::move(table);
    } catch (const Error& e) {
      obs::log::Event(obs::log::Level::kWarn, "planner.zone_fallback")
          .kv("dir", dir_.string())
          .kv("error", e.what());
      if (obs::enabled())
        obs::MetricsRegistry::global().counter("planner.zone_fallbacks")
            .add(1);
    }
  }
  planner_ = std::make_shared<QueryPlanner>(meta_.spatial_tree,
                                            std::move(zones),
                                            plan_mode_from_env());
  // Hand the partition layout to the spatial access profiler so every
  // fetch below can be attributed to its file's bbox always-on
  // (docs/OBSERVABILITY.md "Spatial access profiles").
  if (!meta_.files.empty()) {
    std::vector<obs::AccessProfiler::FileInfo> files;
    files.reserve(meta_.files.size());
    for (const FileRecord& f : meta_.files)
      files.push_back({f.file_name(), f.bounds, f.particle_count});
    profile_base_ = obs::AccessProfiler::instance().register_dataset(
        dir_.string(), meta_.domain, meta_.schema.record_size(),
        meta_.has_bounds, std::move(files));
  }
}

Dataset Dataset::open(const std::filesystem::path& dir) {
  try {
    return Dataset(dir, DatasetMetadata::load(dir));
  } catch (const Error&) {
    // Unreadable metadata under an open write journal means the writer
    // crashed mid-write: report the richer diagnosis (and how to repair)
    // instead of a bare I/O or parse failure.
    if (WriteJournal::present(dir)) {
      throw IncompleteDatasetError(
          "'" + dir.string() +
          "' holds an interrupted write (journal present, metadata "
          "unreadable); run check_and_repair to clear it");
    }
    throw;
  }
}

std::vector<int> Dataset::intersecting(const Box3& box) const {
  // The planner raises the "no spatial metadata" error for bound-less
  // datasets, exactly like the metadata's linear path it wraps.
  return planner_->intersecting(meta_, box);
}

std::uint64_t Dataset::level_prefix_count(int file_index, int levels,
                                          int n_readers) const {
  return file_prefix_count(meta_, file_index, levels, n_readers);
}

QueryPlan Dataset::plan_query(const Box3& box,
                              std::span<const RangeFilter> filters,
                              int levels, int n_readers) const {
  return planner_->plan(meta_, box, filters, levels, n_readers);
}

QueryPlan Dataset::plan_reference(const Box3& box,
                                  std::span<const RangeFilter> filters,
                                  int levels, int n_readers) const {
  return planner_->plan_reference(meta_, box, filters, levels, n_readers);
}

QueryPlan Dataset::run_plan(const Box3& box,
                            std::span<const RangeFilter> filters, int levels,
                            int n_readers, ReadStats* stats) const {
  obs::ScopedSpan span("planner.plan", "planner");
  const Clock::time_point t0 = Clock::now();
  QueryPlan plan = planner_->plan(meta_, box, filters, levels, n_readers);
  if (stats) {
    stats->files_skipped += plan.files_skipped;
    stats->lod_bytes_skipped += plan.lod_bytes_skipped;
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("planner.plans").add(1);
    reg.counter("planner.plan_us")
        .add(static_cast<std::uint64_t>(seconds_since(t0) * 1e6));
    reg.counter("reader.files_considered")
        .add(static_cast<std::uint64_t>(plan.files_considered));
    reg.counter("reader.files_skipped")
        .add(static_cast<std::uint64_t>(plan.files_skipped));
    reg.counter("reader.lod_bytes_skipped").add(plan.lod_bytes_skipped);
  }
  return plan;
}

Dataset::FilePrefix Dataset::fetch_file(int file_index, int levels,
                                        int n_readers,
                                        ReadStats* stats) const {
  return fetch_file_records(
      file_index, level_prefix_count(file_index, levels, n_readers), stats);
}

Dataset::FilePrefix Dataset::fetch_file_records(int file_index,
                                                std::uint64_t records,
                                                ReadStats* stats) const {
  SPIO_EXPECTS(file_index >= 0 && file_index < file_count());
  // Cooperative cancellation point: an expired query aborts here,
  // between files, before touching the engine or any shared state.
  read_detail::check_deadline();
  obs::ScopedSpan span("read.file", "reader");
  const Clock::time_point t0 = Clock::now();
  const FileRecord& f = meta_.files[static_cast<std::size_t>(file_index)];
  SPIO_EXPECTS(records <= f.particle_count);
  const std::uint64_t want = records;
  const std::uint64_t record = meta_.schema.record_size();

  const auto path = dir_ / f.file_name();
  ReadEngine& eng = ReadEngine::instance();
  const FileSig sig = eng.probe(path);
  SPIO_CHECK(sig.size == f.particle_count * record, FormatError,
             "data file '" << f.file_name() << "' holds " << sig.size
                           << " bytes but metadata expects "
                           << f.particle_count * record);

  FilePrefix prefix;
  // The mirror spec lets a leader miss build the SoA position mirror
  // with the prefix, so every warm query on this file takes the SIMD
  // kernels (src/simd) instead of the scalar fallback.
  const ReadEngine::MirrorSpec mspec{static_cast<std::size_t>(record),
                                     meta_.schema.offset(0)};
  prefix.fetched = eng.fetch(path, want * record, sig, &mspec);
  prefix.count = want;
  // A single-flight follower shared another query's read: like a hit,
  // this call opened nothing and read no bytes of its own.
  const bool opened = prefix.fetched.outcome == CacheOutcome::kBypass ||
                      prefix.fetched.outcome == CacheOutcome::kMiss;
  if (stats) {
    if (opened) {
      stats->files_opened += 1;
      stats->bytes_read += want * record;
      if (prefix.fetched.outcome == CacheOutcome::kMiss)
        stats->cache_misses += 1;
    } else {
      stats->cache_hits += 1;
    }
    stats->particles_scanned += want;
    stats->file_io_seconds += seconds_since(t0);
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    if (opened) {
      reg.counter("reader.files_opened").add(1);
      reg.counter("reader.bytes_read").add(want * record);
    }
    reg.counter("reader.particles_scanned").add(want);
  }
  // Always-on spatial attribution: this fetch's bytes land in the
  // file's profiler slot. The outcome enums share their values, and the
  // profiler charges bytes_fetched only for kBypass/kMiss — the same
  // "opened" split as the stats above, so followers and hits never
  // double-count disk bytes.
  obs::AccessProfiler::instance().record_fetch(
      profile_base_, file_index, want * record,
      static_cast<obs::AccessOutcome>(prefix.fetched.outcome),
      prefix.fetched.mirror != nullptr,
      static_cast<std::uint64_t>(seconds_since(t0) * 1e6));
  return prefix;
}

ParticleBuffer Dataset::read_data_file(int file_index, int levels,
                                       int n_readers,
                                       ReadStats* stats) const {
  FilePrefix prefix = fetch_file(file_index, levels, n_readers, stats);
  ParticleBuffer buf(meta_.schema);
  buf.adopt_bytes(prefix.fetched.take_or_copy());
  if (stats) stats->particles_returned += prefix.count;
  // A direct file read keeps every scanned record: used == scanned.
  obs::AccessProfiler::instance().record_used(
      profile_base_, file_index, prefix.count * meta_.schema.record_size());
  return buf;
}

std::uint64_t Dataset::filter_files_into(std::span<const FilePlan> files,
                                         const Box3& box,
                                         std::span<const RangeFilter> filters,
                                         bool whole_file_fast_path,
                                         ParticleBuffer& out,
                                         ReadStats* stats) const {
  const std::size_t n = files.size();
  const std::uint64_t record = meta_.schema.record_size();
  obs::AccessProfiler& prof = obs::AccessProfiler::instance();

  /// Filter (or fast-path-append) one fetched prefix into `dst` and
  /// attribute the surviving bytes to the file's profiler slot — the
  /// shared tail of the serial and pooled branches. The filter/merge
  /// wall time feeds the per-query time breakdown, so the clock is only
  /// read in detailed mode.
  const auto filter_prefix = [&](int fi, const FilePrefix& prefix,
                                 ParticleBuffer& dst) -> std::uint64_t {
    const FileRecord& f = meta_.files[static_cast<std::size_t>(fi)];
    const bool timed = prof.detailed();
    const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
    std::uint64_t appended = 0;
    bool merged = false;
    if (whole_file_fast_path && box.contains_box(f.bounds)) {
      // Whole file lies inside the query: no per-particle filter
      // needed — the payoff of spatially-coherent files. The planner's
      // closed zone tests guarantee a fully-contained file is never
      // tail-clamped, so this prefix is the complete LOD prefix.
      dst.append_bytes(prefix.bytes());
      appended = prefix.count;
      merged = true;
    } else if (filters.empty()) {
      appended = read_detail::filter_box_dispatch(prefix.bytes(), meta_.schema,
                                                  box, prefix.mirror(), dst);
    } else {
      appended = read_detail::filter_box_ranges_dispatch(
          prefix.bytes(), meta_.schema, box, filters, prefix.mirror(), dst);
    }
    const std::uint64_t us =
        timed ? static_cast<std::uint64_t>(seconds_since(t0) * 1e6) : 0;
    prof.record_used(profile_base_, fi, appended * record,
                     /*filter_us=*/merged ? 0 : us,
                     /*merge_us=*/merged ? us : 0);
    return appended;
  };

  /// Fetch + filter file `files[k]` into `dst`, counting into `st`.
  /// Returns records appended.
  const auto filter_one = [&](std::size_t k, ParticleBuffer& dst,
                              ReadStats* st) -> std::uint64_t {
    const FilePlan& p = files[k];
    const FilePrefix prefix =
        fetch_file_records(p.file, p.fetch_records, st);
    return filter_prefix(p.file, prefix, dst);
  };

  ReadEngine& eng = ReadEngine::instance();
  std::uint64_t returned = 0;
  if (n <= 1 || eng.concurrency() <= 1) {
    // Serial: filter every file straight into `out` — no per-file
    // buffers, no merge copy. This IS the merge order.
    for (std::size_t k = 0; k < n; ++k) returned += filter_one(k, out, stats);
    if (stats) stats->particles_returned += returned;
    return returned;
  }

  // The merge below emits straight into `out` the moment each file's
  // fetch resolves, so the exact total is not known up front. Reserve
  // the metadata upper bound (every record of every prefix matching) and
  // trim below when a selective query leaves most of it unused — the
  // trim copy is cheapest exactly when the result is small.
  std::uint64_t upper = 0;
  for (std::size_t k = 0; k < n; ++k) upper += files[k].fetch_records;
  const std::size_t prior = out.size();
  out.reserve(prior + static_cast<std::size_t>(upper));

  // Workers only fetch; the main thread filters each prefix into `out`
  // in `files` order — the serial loop's order, so output (and the
  // rethrow point of a failing file) stays identical — as soon as its
  // fetch resolves. Filtering file k rides in the I/O-wait gaps of the
  // still-running fetches of files k+1..n.
  struct PerFile {
    FilePrefix prefix;
    ReadStats stats;
  };
  std::vector<PerFile> results(n);
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  // Carry the submitting query's deadline — and its request ID, for span
  // and log attribution — onto the pool workers. The token outlives the
  // tasks: every future is drained below before this frame returns.
  const read_detail::DeadlineToken* deadline = read_detail::current_deadline();
  const std::uint64_t qid = obs::current_query_id();
  for (std::size_t k = 0; k < n; ++k)
    pending.push_back(
        eng.pool().submit([this, &results, files, k, deadline, qid] {
          read_detail::ScopedDeadline dl(deadline);
          obs::ScopedQueryId qs(qid);
          results[k].prefix = fetch_file_records(
              files[k].file, files[k].fetch_records, &results[k].stats);
        }));

  std::exception_ptr first_error;
  for (std::size_t k = 0; k < n; ++k) {
    try {
      pending[k].get();  // rethrows this file's fetch error, if any
      if (first_error) continue;  // drain remaining fetches, don't filter
      PerFile& r = results[k];
      if (stats) stats->accumulate(r.stats);
      returned += filter_prefix(files[k].file, r.prefix, out);
      r.prefix = FilePrefix{};  // drop the buffer before the next file
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  // Selective query against a big reservation: hand the slack back.
  if (out.size() - prior < upper / 2) out.shrink_to_fit();
  if (stats) stats->particles_returned += returned;
  return returned;
}

ParticleBuffer Dataset::query_box(const Box3& box, int levels, int n_readers,
                                  ReadStats* stats) const {
  obs::ScopedSpan span("read.query_box", "reader");
  obs::ProfiledQuery pq("query_box");
  const QueryPlan plan = run_plan(box, {}, levels, n_readers, stats);
  ParticleBuffer out(meta_.schema);
  filter_files_into(plan.files, box, {},
                    /*whole_file_fast_path=*/true, out, stats);
  publish_returned(out.size(), out.byte_size());
  return out;
}

std::vector<int> Dataset::files_matching(
    const Box3& box, std::span<const RangeFilter> filters) const {
  std::vector<int> hits = intersecting(box);
  if (filters.empty() || !meta_.has_field_ranges) return hits;
  std::vector<int> out;
  for (const int fi : hits) {
    const FileRecord& f = meta_.files[static_cast<std::size_t>(fi)];
    bool possible = true;
    for (const RangeFilter& rf : filters) {
      const std::size_t idx = meta_.range_index(rf.field, rf.component);
      if (!f.field_ranges[idx].intersects(rf.lo, rf.hi)) {
        possible = false;
        break;
      }
    }
    if (possible) out.push_back(fi);
  }
  return out;
}

ParticleBuffer Dataset::query(const Box3& box,
                              std::span<const RangeFilter> filters,
                              int levels, int n_readers,
                              ReadStats* stats) const {
  obs::ScopedSpan span("read.query", "reader");
  obs::ProfiledQuery pq("query");
  for (const RangeFilter& rf : filters) {
    SPIO_CHECK(rf.field < meta_.schema.field_count(), ConfigError,
               "range filter on field " << rf.field << " but schema has "
                                        << meta_.schema.field_count());
    SPIO_CHECK(rf.component < meta_.schema.fields()[rf.field].components,
               ConfigError,
               "range filter component " << rf.component
                                         << " out of bounds");
    SPIO_CHECK(rf.lo <= rf.hi, ConfigError,
               "range filter with lo > hi on field " << rf.field);
  }
  const QueryPlan plan = run_plan(box, filters, levels, n_readers, stats);
  ParticleBuffer out(meta_.schema);
  filter_files_into(plan.files, box, filters,
                    /*whole_file_fast_path=*/false, out, stats);
  publish_returned(out.size(), out.byte_size());
  return out;
}

std::uint64_t Dataset::stream_box(
    const Box3& box,
    const std::function<bool(const ParticleBuffer& chunk)>& sink,
    int levels, int n_readers, ReadStats* stats) const {
  SPIO_EXPECTS(sink != nullptr);
  obs::ScopedSpan span("read.stream_box", "reader");
  obs::ProfiledQuery pq("stream_box");
  const QueryPlan plan = run_plan(box, {}, levels, n_readers, stats);
  const std::span<const FilePlan> hits = plan.files;

  struct Chunk {
    ParticleBuffer buf;
    ReadStats stats;
    std::exception_ptr error;
  };
  const auto produce = [&](const FilePlan& p, Chunk& c) {
    try {
      const int fi = p.file;
      const FileRecord& f = meta_.files[static_cast<std::size_t>(fi)];
      const FilePrefix prefix =
          fetch_file_records(fi, p.fetch_records, &c.stats);
      obs::AccessProfiler& prof = obs::AccessProfiler::instance();
      const bool timed = prof.detailed();
      const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
      const bool merged = box.contains_box(f.bounds);
      if (merged) {
        c.buf.append_bytes(prefix.bytes());
      } else {
        read_detail::filter_box_dispatch(prefix.bytes(), meta_.schema, box,
                                         prefix.mirror(), c.buf);
      }
      // Survived-the-filter attribution; chunks a stopping sink never
      // consumes still count (they were materialized and filtered).
      const std::uint64_t us =
          timed ? static_cast<std::uint64_t>(seconds_since(t0) * 1e6) : 0;
      prof.record_used(profile_base_, fi,
                       c.buf.size() * meta_.schema.record_size(),
                       /*filter_us=*/merged ? 0 : us,
                       /*merge_us=*/merged ? us : 0);
    } catch (...) {
      c.error = std::current_exception();
    }
  };

  // Prefetch window: while the sink consumes one chunk, the pool
  // produces the next ones. A window of 1 (pool forced to 1) is exactly
  // the serial path: produce, deliver, repeat — and an early-stopping
  // sink then reads nothing past the chunk it rejected. With a wider
  // window, up to `window` file prefixes are resident at once and an
  // early stop may have prefetched (and so counts in `stats`) up to
  // `window - 1` files beyond the delivered one.
  ReadEngine& eng = ReadEngine::instance();
  const std::size_t window = std::max<std::size_t>(
      1, std::min<std::size_t>(hits.size(),
                               static_cast<std::size_t>(eng.concurrency())));

  std::deque<std::unique_ptr<Chunk>> inflight;
  std::deque<std::future<void>> pending;
  std::size_t next = 0;
  bool stopped = false;
  std::exception_ptr failure;
  std::uint64_t delivered = 0;

  const auto launch = [&] {
    while (!stopped && !failure && next < hits.size() &&
           inflight.size() < window) {
      auto chunk =
          std::make_unique<Chunk>(Chunk{ParticleBuffer(meta_.schema), {}, {}});
      Chunk* c = chunk.get();
      const FilePlan fp = hits[next++];
      inflight.push_back(std::move(chunk));
      // As in filter_files_into: the deadline token (and request ID)
      // outlives the task (the loop below drains every pending future
      // before returning).
      const read_detail::DeadlineToken* deadline =
          read_detail::current_deadline();
      const std::uint64_t qid = obs::current_query_id();
      pending.push_back(eng.pool().submit([&produce, fp, c, deadline, qid] {
        read_detail::ScopedDeadline dl(deadline);
        obs::ScopedQueryId qs(qid);
        produce(fp, *c);
      }));
    }
  };

  launch();
  while (!inflight.empty()) {
    pending.front().wait();
    pending.pop_front();
    const std::unique_ptr<Chunk> c = std::move(inflight.front());
    inflight.pop_front();
    if (c->error && !failure) failure = c->error;
    if (stats) stats->accumulate(c->stats);
    if (!failure && !stopped && !c->buf.empty()) {
      delivered += c->buf.size();
      if (stats) stats->particles_returned += c->buf.size();
      if (!sink(c->buf)) stopped = true;
    }
    launch();
  }
  if (failure) std::rethrow_exception(failure);
  publish_returned(delivered, delivered * meta_.schema.record_size());
  return delivered;
}

ParticleBuffer Dataset::query_box_scan_all(const Box3& box,
                                           ReadStats* stats) const {
  obs::ScopedSpan span("read.scan_all", "reader");
  obs::ProfiledQuery pq("scan_all");
  ParticleBuffer out(meta_.schema);
  // Every file in full, no planner: the baseline works without bounds.
  std::vector<FilePlan> all(static_cast<std::size_t>(file_count()));
  for (int fi = 0; fi < file_count(); ++fi) {
    const std::uint64_t count =
        meta_.files[static_cast<std::size_t>(fi)].particle_count;
    all[static_cast<std::size_t>(fi)] = {fi, count, count};
  }
  // No whole-file shortcut: the baseline deliberately filters every
  // particle ("read all particles ... and then cherry-pick", §4).
  filter_files_into(all, box, {},
                    /*whole_file_fast_path=*/false, out, stats);
  publish_returned(out.size(), out.byte_size());
  return out;
}

int Dataset::level_count(int n_readers) const {
  return lod_level_count(meta_.lod, n_readers, meta_.total_particles);
}

Box3 reader_tile(const Box3& domain, int rank, int nranks) {
  SPIO_EXPECTS(nranks >= 1);
  SPIO_EXPECTS(rank >= 0 && rank < nranks);
  return PatchDecomposition::for_ranks(domain, nranks).patch(rank);
}

}  // namespace spio
