#pragma once

/// \file read_engine.hpp
/// The shared read engine every query entry point routes through
/// (docs/PERF.md "Read path"). Four jobs:
///
///   1. **Worker pool** — a process-wide bounded `ThreadPool`
///      (`SPIO_READ_THREADS=n`, default = hardware concurrency clamped
///      to 16) so a query's N intersecting files are read and filtered
///      concurrently. Results are always merged in file-index order, so
///      output stays byte-identical to the serial path; a pool forced to
///      1 reproduces serial execution exactly.
///   2. **File-buffer cache** — an LRU cache of file *prefixes* keyed by
///      `(path, prefix_bytes)` with a byte budget
///      (`SPIO_READ_CACHE=bytes`, suffixes k/m/g accepted; default
///      256 MiB; `0` disables), sharded `SPIO_CACHE_SHARDS` ways
///      (default 8) so concurrent service traffic contends on N mutexes
///      instead of one — see prefix_cache.hpp. Entries are validated
///      against the file's (size, mtime) signature on every hit, so a
///      dataset rewritten in place is never served stale.
///      Counters: `reader.cache.{hits,misses,bytes_evicted}`.
///   3. **Single-flight fetch** — concurrent misses on the same
///      `(path, prefix_bytes)` are deduplicated: exactly one *leader*
///      reads the file while the other callers wait as *followers* and
///      share the leader's buffer (`CacheOutcome::kFollower`). K
///      concurrent queries over a cold hot-spot cost one disk read, not
///      K. Counters: `service.singleflight_{leader,follower}`.
///   4. **Fused filter kernels** (`read_detail`) — run-detecting
///      compaction replacing the per-particle `contains` + `append_from`
///      loops: the position offset/stride is hoisted once per file and
///      contiguous matching records are copied with single `memcpy`s.
///      The original loops are retained as `*_reference` oracles
///      (mirroring `writer_detail::bin_particles_reference`), and
///      differential tests pin the fused kernels to them byte-for-byte.
///
/// `read_detail` also hosts the cooperative **deadline** machinery used
/// by the query service: a thread-local expiry instant installed with
/// `ScopedDeadline` and polled with `check_deadline()` at every
/// per-file fetch boundary, so an expired query aborts with
/// `TimeoutError` between files — never mid-buffer, never leaving the
/// cache or single-flight table corrupted.
///
/// Thread safety: `probe`/`fetch` and the cache maintenance hooks are
/// safe to call from any thread (simmpi ranks share one process and one
/// engine). `set_concurrency`/`set_cache_shards` swap the pool/cache and
/// must not race in-flight queries — call them between queries (tests
/// and benchmarks only).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/prefix_cache.hpp"
#include "util/thread_pool.hpp"
#include "workload/decomposition.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

/// A predicate on one scalar field component: keep particles with value
/// in [lo, hi]. Combined with the spatial box by `Dataset::query`
/// (re-exported there as `Dataset::RangeFilter`).
struct RangeFilter {
  std::size_t field = 0;
  std::uint32_t component = 0;
  double lo = 0;
  double hi = 0;
};

/// How a `fetch` was satisfied. `kBypass` = cache disabled (or an empty
/// prefix): a plain read, exactly the pre-engine behaviour. `kFollower`
/// = another thread's in-flight read was joined — no disk open on this
/// call, but not a cache hit either.
enum class CacheOutcome : std::uint8_t {
  kBypass = 0,
  kHit = 1,
  kMiss = 2,
  kFollower = 3,
};

class ReadEngine {
 public:
  /// Called just before every real disk read (leader and bypass paths;
  /// hits and followers never fire it) with the path and prefix length.
  /// Test/chaos hook: inject latency by sleeping, or I/O failure by
  /// throwing — a thrown exception propagates exactly like a read error
  /// (followers of a failed leader rethrow it too).
  using FetchHook = std::function<void(const std::filesystem::path&,
                                       std::uint64_t)>;

  /// The process-wide engine (thread-safe magic static). Configured from
  /// `SPIO_READ_THREADS` / `SPIO_READ_CACHE` / `SPIO_CACHE_SHARDS` on
  /// first use.
  static ReadEngine& instance();

  /// Tells `fetch` how the prefix's AoS records are laid out so it can
  /// build (and cache) the SoA position mirror the SIMD kernels read
  /// (simd/position_mirror.hpp): record stride and the byte offset of
  /// the f64x3 position within each record.
  struct MirrorSpec {
    std::size_t record_size = 0;
    std::size_t position_offset = 0;
  };

  /// One file prefix as returned by `fetch`: shared with the cache when
  /// the cache holds it, owned when the fetch bypassed the cache.
  struct Fetched {
    std::shared_ptr<const ByteBlock> shared;
    std::vector<std::byte> owned;
    /// SoA position mirror of `bytes()`, when the caller passed a
    /// `MirrorSpec`, the entry went through the cache, and a SIMD level
    /// is active — null otherwise (callers fall back to scalar).
    std::shared_ptr<const PositionMirror> mirror;
    CacheOutcome outcome = CacheOutcome::kBypass;

    std::span<const std::byte> bytes() const {
      return shared ? shared->span() : std::span<const std::byte>(owned);
    }
    /// The payload, moved when uniquely owned (bypass) and copied when
    /// shared with the cache — for `ParticleBuffer::adopt_bytes`.
    std::vector<std::byte> take_or_copy() {
      if (!shared) return std::move(owned);
      const std::span<const std::byte> s = shared->span();
      return std::vector<std::byte>(s.begin(), s.end());
    }
  };

  /// Stat `path` (throws `IoError` when missing). Samples mtime only
  /// when the cache is on; a disabled cache keeps the pre-engine
  /// one-stat-per-read cost.
  FileSig probe(const std::filesystem::path& path) const;

  /// The first `prefix_bytes` of `path`, through the cache and the
  /// single-flight table. `sig` must come from a `probe` of the same
  /// path (it validates cached entries and stamps fresh ones). Throws
  /// `IoError`/`FormatError` like `read_file_range` on a miss; a
  /// follower rethrows its leader's failure. With a non-null `mirror`
  /// spec, a leader miss also builds the SoA position mirror (skipped
  /// when SIMD dispatch is scalar — the mirror would never be read) and
  /// caches it with the prefix; hits and followers return the cached
  /// one in `Fetched::mirror`.
  Fetched fetch(const std::filesystem::path& path, std::uint64_t prefix_bytes,
                const FileSig& sig, const MirrorSpec* mirror = nullptr);

  /// The shared worker pool (size = `concurrency()`).
  ThreadPool& pool();
  /// Maximum concurrent per-file reads (1 = serial, inline).
  int concurrency() const;

  bool cache_enabled() const;
  std::uint64_t cache_budget() const;
  /// Aggregated over shards, plus the engine's single-flight counters.
  ReadCacheStats cache_stats() const;
  int cache_shards() const;

  // -- maintenance / test hooks ------------------------------------------
  /// Drop every cached entry (counted as evictions).
  void clear_cache();
  /// Re-budget the cache; 0 disables it (and drops residents). Counters
  /// are preserved.
  void set_cache_budget(std::uint64_t bytes);
  /// Zero the hit/miss/eviction and single-flight counters (residents
  /// stay).
  void reset_cache_stats();
  /// Swap the worker pool for one of `threads`. Must not race in-flight
  /// queries.
  void set_concurrency(int threads);
  /// Rebuild the cache with `shards` shards (budget preserved, residents
  /// and hit/miss counters dropped). Must not race in-flight queries.
  void set_cache_shards(int shards);
  /// Install (or, with nullptr, remove) the pre-read hook. Must not race
  /// in-flight queries — tests install it while the service is idle.
  void set_fetch_hook(FetchHook hook);

 private:
  ReadEngine();

  /// One in-flight read that followers wait on.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const ByteBlock> data;
    std::shared_ptr<const PositionMirror> mirror;  // may be null
    std::exception_ptr error;
  };

  void run_fetch_hook(const std::filesystem::path& path,
                      std::uint64_t prefix_bytes);

  std::unique_ptr<ShardedPrefixCache> cache_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex sf_mu_;  // guards inflight_ and the sf_* counters
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::uint64_t sf_leaders_ = 0;
  std::uint64_t sf_followers_ = 0;

  std::mutex hook_mu_;
  FetchHook fetch_hook_;
};

namespace read_detail {

/// Parse a byte-size string with an optional k/m/g suffix (binary
/// multiples); the `SPIO_READ_CACHE` syntax. Returns false on garbage.
bool parse_size_bytes(const std::string& text, std::uint64_t* out);

// -- cooperative deadlines -----------------------------------------------

/// A query's expiry instant, installed thread-locally for the duration
/// of its execution.
struct DeadlineToken {
  std::chrono::steady_clock::time_point at;
};

/// The calling thread's active deadline (nullptr when none). Engine pool
/// lambdas capture this at submit time and re-install it on the worker
/// via `ScopedDeadline`, so per-file fetches honor the query's deadline
/// across threads.
const DeadlineToken* current_deadline();

/// Throw `TimeoutError` if the calling thread's deadline has passed.
/// Polled at per-file fetch boundaries — cheap (one TLS load when no
/// deadline is set) and always at a point where no shared state is held.
void check_deadline();

/// RAII install/restore of the thread's deadline.
class ScopedDeadline {
 public:
  /// Install `at` as the deadline; a default-constructed (epoch) time
  /// point installs "no deadline" (clearing any inherited one).
  explicit ScopedDeadline(std::chrono::steady_clock::time_point at);
  /// Re-install a deadline captured on another thread with
  /// `current_deadline()` (may be nullptr). The token must outlive this
  /// scope — guaranteed when the capturing query drains its pool futures
  /// before returning.
  explicit ScopedDeadline(const DeadlineToken* inherited);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  DeadlineToken token_;
  const DeadlineToken* prev_;
};

// -- fused filter kernels -------------------------------------------------

/// Fused spatial filter: append every record of `bytes` whose position
/// lies in `box` (half-open, `Box3::contains`) to `out`, copying each
/// contiguous matching run with a single `memcpy` the moment the run
/// closes — while its bytes are still cache-hot from the scan. Returns
/// the number of records appended. Record order is preserved, so the
/// output is byte-identical to `filter_box_reference`. Callers that know
/// an upper bound should `reserve` `out` first to avoid regrowth.
std::uint64_t filter_box(std::span<const std::byte> bytes,
                         const Schema& schema, const Box3& box,
                         ParticleBuffer& out);

/// The retained pre-engine loop (`box.contains(position(i))` +
/// `append_from`), the differential-testing oracle for `filter_box`.
std::uint64_t filter_box_reference(std::span<const std::byte> bytes,
                                   const Schema& schema, const Box3& box,
                                   ParticleBuffer& out);

/// Fused spatial + attribute filter (the `Dataset::query` kernel): keep
/// records inside `box` whose filtered field components all fall in
/// their [lo, hi]. Field offsets and element types are hoisted once;
/// matching runs are copied with single `memcpy`s. NaN component values
/// pass a filter, exactly as in the reference (`!(v < lo || v > hi)`).
std::uint64_t filter_box_ranges(std::span<const std::byte> bytes,
                                const Schema& schema, const Box3& box,
                                std::span<const RangeFilter> filters,
                                ParticleBuffer& out);

/// The retained pre-engine loop, oracle for `filter_box_ranges`.
std::uint64_t filter_box_ranges_reference(std::span<const std::byte> bytes,
                                          const Schema& schema,
                                          const Box3& box,
                                          std::span<const RangeFilter> filters,
                                          ParticleBuffer& out);

/// Fused owner binning (the `distributed_read` kernel): append each
/// record to `outgoing[rank_of(cell_of(position))]`, copying runs with
/// equal owner with single `memcpy`s. `outgoing.size()` must equal
/// `decomp.rank_count()`. Per-owner record order is preserved.
void bin_by_owner(std::span<const std::byte> bytes, const Schema& schema,
                  const PatchDecomposition& decomp,
                  std::vector<ParticleBuffer>& outgoing);

/// The retained pre-engine loop, oracle for `bin_by_owner`.
void bin_by_owner_reference(std::span<const std::byte> bytes,
                            const Schema& schema,
                            const PatchDecomposition& decomp,
                            std::vector<ParticleBuffer>& outgoing);

// -- SIMD dispatch --------------------------------------------------------
//
// The read path calls these instead of the fused kernels directly. With
// a non-null `mirror` (built by `ReadEngine::fetch` from a `MirrorSpec`)
// and a SIMD level active, the vectorized kernels in src/simd run over
// the mirror — output byte-identical to the fused/reference kernels —
// and `kernel.simd_hits` counts one; otherwise the fused scalar kernel
// runs and `kernel.simd_fallbacks` counts one. Each dispatch opens a
// `kernel` trace span tagged scalar/sse2/avx2.

std::uint64_t filter_box_dispatch(std::span<const std::byte> bytes,
                                  const Schema& schema, const Box3& box,
                                  const PositionMirror* mirror,
                                  ParticleBuffer& out);

std::uint64_t filter_box_ranges_dispatch(std::span<const std::byte> bytes,
                                         const Schema& schema, const Box3& box,
                                         std::span<const RangeFilter> filters,
                                         const PositionMirror* mirror,
                                         ParticleBuffer& out);

void bin_by_owner_dispatch(std::span<const std::byte> bytes,
                           const Schema& schema,
                           const PatchDecomposition& decomp,
                           const PositionMirror* mirror,
                           std::vector<ParticleBuffer>& outgoing);

}  // namespace read_detail

}  // namespace spio
