#pragma once

/// \file checked_io.hpp
/// Rewrite-and-revalidate file writes: the writer's defense against torn
/// writes, corrupted buffers and failed flushes.
///
/// `checked_write_file` writes a payload, reads it back, and compares
/// CRC-64 checksums. A mismatch (or a simulated failed flush) triggers a
/// bounded rewrite; exhausting the budget throws `FaultError`. Under a
/// null injector the function is a plain write + one read-back
/// verification pass.
///
/// The one fault this cannot catch is `kBitRot`: the injector corrupts
/// the file *after* validation passes, modeling media decay between write
/// and read. Only the reader-side checksum table (`checksums.spio`)
/// detects it — which is exactly the property the chaos suite asserts.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>

#include "faultsim/fault_plan.hpp"

namespace spio::faultsim {

/// Validated-write retry budget.
struct CheckedIoPolicy {
  int max_attempts = 4;
};

/// Write `data` to `path` with read-back CRC validation and bounded
/// rewrite on failure. `injector` (may be null) supplies storage faults
/// for `rank`'s write attempts. Returns the CRC-64 of `data` — the value
/// recorded in the dataset's checksum table. Throws `FaultError` when the
/// retry budget is exhausted and `IoError` on real filesystem failure.
std::uint64_t checked_write_file(const std::filesystem::path& path,
                                 std::span<const std::byte> data,
                                 FaultInjector* injector, int rank,
                                 const CheckedIoPolicy& policy = {});

}  // namespace spio::faultsim
