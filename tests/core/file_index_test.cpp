#include "core/file_index.hpp"

#include <gtest/gtest.h>

#include "core/aggregation_grid.hpp"
#include "util/rng.hpp"

namespace spio {
namespace {

/// Synthetic metadata: F disjoint files tiling the unit cube via an
/// aggregation grid.
DatasetMetadata tiled_metadata(const Vec3i& dims) {
  DatasetMetadata m;
  m.schema = Schema::position_only();
  m.domain = Box3::unit();
  m.has_field_ranges = false;
  const AggregationGrid grid(Box3::unit(), dims);
  for (int p = 0; p < grid.partition_count(); ++p) {
    FileRecord f;
    f.partition_id = static_cast<std::uint32_t>(p);
    f.aggregator_rank = static_cast<std::uint32_t>(p);
    f.particle_count = 1;
    f.bounds = grid.partition_box(p);
    m.files.push_back(f);
  }
  m.total_particles = static_cast<std::uint64_t>(grid.partition_count());
  return m;
}

TEST(FileIndex, MatchesLinearScanOnTiledFiles) {
  const DatasetMetadata m = tiled_metadata({8, 8, 8});  // 512 files
  const FileIndex index(m);
  Xoshiro256 rng(17);
  for (int q = 0; q < 100; ++q) {
    Box3 box;
    for (int a = 0; a < 3; ++a) {
      const double lo = rng.uniform();
      const double hi = rng.uniform();
      box.lo[a] = std::min(lo, hi);
      box.hi[a] = std::max(lo, hi);
    }
    if (box.is_empty()) continue;
    EXPECT_EQ(index.query(box), m.files_intersecting(box)) << "query " << q;
  }
}

TEST(FileIndex, PointQueriesTouchOneTile) {
  const DatasetMetadata m = tiled_metadata({4, 4, 4});
  const FileIndex index(m);
  const Box3 tiny({0.3, 0.3, 0.3}, {0.301, 0.301, 0.301});
  const auto hits = index.query(tiny);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(
      m.files[static_cast<std::size_t>(hits[0])].bounds.overlaps(tiny));
}

TEST(FileIndex, WholeDomainReturnsEverything) {
  const DatasetMetadata m = tiled_metadata({3, 3, 2});
  const FileIndex index(m);
  EXPECT_EQ(index.query(Box3::unit()).size(), m.files.size());
}

TEST(FileIndex, DisjointQueryReturnsNothing) {
  const DatasetMetadata m = tiled_metadata({2, 2, 2});
  const FileIndex index(m);
  EXPECT_TRUE(index.query(Box3({5, 5, 5}, {6, 6, 6})).empty());
}

TEST(FileIndex, HandlesFilesOutsideTheNominalDomain) {
  DatasetMetadata m = tiled_metadata({2, 1, 1});
  // A file box sticking out of the domain (adaptive pad case).
  FileRecord f;
  f.partition_id = 2;
  f.aggregator_rank = 9;
  f.particle_count = 1;
  f.bounds = Box3({0.9, 0.9, 0.9}, {1.5, 1.5, 1.5});
  m.files.push_back(f);
  m.total_particles += 1;
  const FileIndex index(m);
  const auto hits = index.query(Box3({1.1, 1.1, 1.1}, {1.2, 1.2, 1.2}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2);
}

TEST(FileIndex, RequiresBounds) {
  DatasetMetadata m = tiled_metadata({2, 2, 1});
  m.has_bounds = false;
  EXPECT_THROW(FileIndex{m}, ConfigError);
}

TEST(FileIndex, SingleFileDataset) {
  const DatasetMetadata m = tiled_metadata({1, 1, 1});
  const FileIndex index(m);
  EXPECT_EQ(index.query(Box3({0.4, 0.4, 0.4}, {0.6, 0.6, 0.6})),
            std::vector<int>{0});
}

}  // namespace
}  // namespace spio
