/// The randomized chaos/property harness (ISSUE tentpole): run the full
/// write -> validate -> read pipeline under seeded random fault schedules
/// and assert the system's end-to-end invariants. Every schedule must end
/// in one of two states — clean recovery (the dataset is byte-identical
/// to a fault-free golden run) or a structured, detected failure that
/// repair turns back into a writable directory. Never a deadlock, crash,
/// or silent loss.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "chaos/chaos_util.hpp"
#include "core/reader.hpp"
#include "core/validate.hpp"
#include "util/temp_dir.hpp"

namespace spio::chaos {
namespace {

using faultsim::FaultEvent;
using faultsim::FaultPlan;

/// Deterministic signature of an event log: the distinct (rank,
/// description) pairs, sorted. `after = 0` plans fault a fixed prefix of
/// each rank's transmission stream, so this set is seed-determined; only
/// the *repeat count* of an event may vary (a slow ACK can provoke one
/// extra retransmission through a still-open fault window), which the
/// dedup deliberately ignores.
std::vector<std::pair<int, std::string>> signature(
    const std::vector<FaultEvent>& events) {
  std::vector<std::pair<int, std::string>> sig;
  sig.reserve(events.size());
  for (const FaultEvent& e : events) sig.emplace_back(e.rank, e.description);
  std::sort(sig.begin(), sig.end());
  sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  return sig;
}

/// Just the rank-death events of a log (replay-stable even though an
/// abort truncates other ranks' fault streams at a racy point).
std::vector<std::pair<int, std::string>> deaths_of(
    const std::vector<FaultEvent>& events) {
  std::vector<std::pair<int, std::string>> sig;
  for (const FaultEvent& e : events)
    if (e.description.find("death") != std::string::npos)
      sig.emplace_back(e.rank, e.description);
  std::sort(sig.begin(), sig.end());
  return sig;
}

class ChaosWrite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosWrite, EverySeededScheduleRecoversOrFailsStructured) {
  const std::uint64_t seed = GetParam();
  const FaultPlan plan = FaultPlan::random(seed, kRanks);

  TempDir dir("spio-chaos");
  const ChaosOutcome out = run_chaos_write(dir.path(), plan);

  // Exactly one structured outcome. Any other exception type escapes
  // run_chaos_write and fails the test; a hang is impossible because every
  // retry loop is bounded and abort-aware.
  ASSERT_EQ((out.completed ? 1 : 0) + (out.rank_death ? 1 : 0) +
                (out.fault_error ? 1 : 0),
            1)
      << "seed " << seed;

  // Random plans bound every fault window below the retry budgets, so the
  // only non-clean outcome they can produce is a scheduled rank death —
  // and a scheduled death always fires (every rank passes every phase).
  EXPECT_EQ(out.rank_death, !plan.deaths.empty()) << "seed " << seed;
  EXPECT_FALSE(out.fault_error) << "seed " << seed << ": " << out.what;

  if (out.completed) {
    // Clean recovery: journal retired, deep validation (checksums, LOD
    // prefix law, bounds, field ranges) passes, and the directory is
    // byte-identical to the fault-free golden run — which subsumes "every
    // particle readable exactly once" and "box queries match golden".
    EXPECT_FALSE(WriteJournal::present(dir.path())) << "seed " << seed;
    const ValidationReport deep = validate_dataset(dir.path(), true);
    EXPECT_TRUE(deep.ok())
        << "seed " << seed << ": " << deep.errors.front();
    EXPECT_TRUE(snapshot_dir(dir.path()) == golden_snapshot())
        << "seed " << seed << ": surviving dataset differs from golden run";
  } else {
    // Structured failure: the interrupted write must be *detected* (open
    // refuses) and *repairable* (repair clears it; a rewrite then matches
    // the golden run exactly).
    EXPECT_TRUE(WriteJournal::present(dir.path())) << "seed " << seed;
    EXPECT_THROW(Dataset::open(dir.path()), IncompleteDatasetError)
        << "seed " << seed;
    EXPECT_EQ(check_and_repair(dir.path(), /*remove_partial=*/true),
              RepairOutcome::kRemovedPartial)
        << "seed " << seed;
    write_golden(dir.path());
    EXPECT_TRUE(snapshot_dir(dir.path()) == golden_snapshot())
        << "seed " << seed << ": rewrite after repair differs from golden";
  }

  // Determinism: replaying the seed yields the same plan and the same
  // outcome. For surviving runs the full applied-fault signature matches;
  // a rank death instead aborts the job while peers are mid-phase, so
  // *their* streams are truncated at a scheduling-dependent point — only
  // the death events themselves are replay-stable there.
  TempDir replay_dir("spio-chaos-replay");
  const FaultPlan replay_plan = FaultPlan::random(seed, kRanks);
  ASSERT_EQ(replay_plan, plan) << "seed " << seed;
  const ChaosOutcome replay = run_chaos_write(replay_dir.path(), replay_plan);
  EXPECT_EQ(replay.completed, out.completed) << "seed " << seed;
  EXPECT_EQ(replay.rank_death, out.rank_death) << "seed " << seed;
  EXPECT_EQ(replay.fault_error, out.fault_error) << "seed " << seed;
  if (out.completed) {
    EXPECT_EQ(signature(replay.events), signature(out.events))
        << "seed " << seed;
  } else {
    EXPECT_EQ(deaths_of(replay.events), deaths_of(out.events))
        << "seed " << seed;
  }
}

// 60 distinct seeded schedules (acceptance floor: 50) — kept cheap per
// schedule (4 ranks x 64 particles) so the full sweep fits a CI budget.
INSTANTIATE_TEST_SUITE_P(Seeds, ChaosWrite,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace spio::chaos
