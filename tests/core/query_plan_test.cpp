#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <vector>

#include "core/query_plan/kd_tree.hpp"
#include "core/query_plan/zone_map.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// The query planner's differential property suite: the pruned plan
/// (k-d candidates + field-range pruning + zone-map file skips and LOD
/// tail clamps) must produce byte-identical query results to the
/// linear-scan reference plan for every box / filter / LOD combination,
/// while never opening a file the plan dropped.
class PlannerSuite : public ::testing::Test {
 protected:
  static constexpr int kRanks = 8;
  static constexpr std::uint64_t kPerRank = 600;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-planner");
    const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 1, 1}), {8, 1, 1});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {1, 1, 1};  // one file per rank -> 8 files along x
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      ParticleBuffer local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(77, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      // Banded density (rank r in [1000r, 1000r + 500]) so range pruning
      // can isolate files; rank 0 additionally carries the planner's two
      // poison values: a NaN (widens its zone to [-inf, +inf]) and a
      // negative zero (must compare equal to +0.0 at zone edges).
      const auto density = local.schema().index_of("density");
      Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 7);
      for (std::size_t i = 0; i < local.size(); ++i) {
        local.set_f64(i, density, 0,
                      1000.0 * comm.rank() + 500.0 * rng.uniform());
      }
      if (comm.rank() == 0) {
        local.set_f64(0, density, 0, std::nan(""));
        local.set_f64(1, density, 0, -0.0);
      }
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  /// The same dataset through the linear-scan oracle planner
  /// (`SPIO_PLAN=linear`, read at Dataset construction).
  static Dataset open_linear() {
    const bool keep = forced_linear();
    ::setenv("SPIO_PLAN", "linear", 1);
    Dataset ds = Dataset::open(dir_->path());
    if (!keep) ::unsetenv("SPIO_PLAN");
    return ds;
  }

  /// True when the suite itself runs under SPIO_PLAN=linear
  /// (bench/run_hotpath.sh re-runs it that way to pin the oracle path):
  /// every Dataset then plans linearly and pruning-specific
  /// expectations are vacuous.
  static bool forced_linear() {
    const char* v = ::getenv("SPIO_PLAN");
    return v != nullptr && std::strcmp(v, "linear") == 0;
  }

  static TempDir* dir_;
};

TempDir* PlannerSuite::dir_ = nullptr;

/// One random query: a box (sometimes degenerate or outside the domain),
/// an LOD bound, and 0-2 attribute filters.
struct RandomQuery {
  Box3 box{{0, 0, 0}, {1, 1, 1}};
  int levels = -1;
  std::vector<Dataset::RangeFilter> filters;
};

RandomQuery random_query(Xoshiro256& rng, const DatasetMetadata& meta,
                         int level_count) {
  RandomQuery q;
  const Box3& dom = meta.domain;
  for (int a = 0; a < 3; ++a) {
    // Span [-10%, +110%] of the domain so some boxes poke outside it.
    const double w = dom.hi[a] - dom.lo[a];
    double x = dom.lo[a] + w * rng.uniform(-0.1, 1.1);
    double y = dom.lo[a] + w * rng.uniform(-0.1, 1.1);
    if (x > y) std::swap(x, y);
    q.box.lo[a] = x;
    q.box.hi[a] = y;
  }
  q.levels = static_cast<int>(rng.uniform_index(
                 static_cast<std::uint64_t>(level_count + 2))) -
             1;  // -1 (all) .. level_count
  const auto density = meta.schema.index_of("density");
  const auto type = meta.schema.index_of("type");
  switch (rng.uniform_index(4)) {
    case 0:
      break;  // pure box query
    case 1: {  // selective density band
      const double lo = rng.uniform(-500.0, 8500.0);
      q.filters.push_back({density, 0, lo, lo + rng.uniform(0.0, 1500.0)});
      break;
    }
    case 2: {  // f32 field filter
      q.filters.push_back({type, 0, 0.0, rng.uniform(0.0, 4.0)});
      break;
    }
    default: {  // conjunction
      const double lo = rng.uniform(-500.0, 8500.0);
      q.filters.push_back({density, 0, lo, lo + rng.uniform(0.0, 3000.0)});
      q.filters.push_back({type, 0, rng.uniform(0.0, 2.0), 4.0});
      break;
    }
  }
  return q;
}

TEST_F(PlannerSuite, RandomQueriesMatchTheLinearOracle) {
  const Dataset pruned = Dataset::open(dir_->path());
  const Dataset linear = open_linear();
  if (!forced_linear()) {
    ASSERT_FALSE(pruned.planner().plan(
        pruned.metadata(), pruned.metadata().domain, {}, -1, 1).used_linear);
  }
  const int levels = pruned.level_count(1);

  for (const std::uint64_t seed : {1u, 2u}) {
    Xoshiro256 rng(seed);
    for (int iter = 0; iter < 1000; ++iter) {
      const RandomQuery q = random_query(rng, pruned.metadata(), levels);
      ReadStats ps, ls;
      const ParticleBuffer a =
          q.filters.empty()
              ? pruned.query_box(q.box, q.levels, 1, &ps)
              : pruned.query(q.box, q.filters, q.levels, 1, &ps);
      const ParticleBuffer b =
          q.filters.empty() ? linear.query_box(q.box, q.levels, 1, &ls)
                            : linear.query(q.box, q.filters, q.levels, 1, &ls);
      ASSERT_EQ(a.byte_size(), b.byte_size())
          << "seed " << seed << " iter " << iter;
      ASSERT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(),
                             b.bytes().begin()))
          << "seed " << seed << " iter " << iter;
      // Pruning may only ever remove work relative to the oracle.
      // (`particles_scanned` rather than `files_opened`: the two
      // datasets share the engine's prefix cache, so the oracle's
      // opens are mostly hits.)
      EXPECT_LE(ps.particles_scanned, ls.particles_scanned);
    }
  }
}

TEST_F(PlannerSuite, PlansAreInternallyConsistent) {
  const Dataset ds = Dataset::open(dir_->path());
  const std::size_t record = ds.metadata().schema.record_size();
  const int levels = ds.level_count(1);
  Xoshiro256 rng(3);
  for (int iter = 0; iter < 1000; ++iter) {
    const RandomQuery q = random_query(rng, ds.metadata(), levels);
    const QueryPlan plan = ds.plan_query(q.box, q.filters, q.levels);
    const QueryPlan ref = ds.plan_reference(q.box, q.filters, q.levels);
    if (!forced_linear()) EXPECT_FALSE(plan.used_linear);
    EXPECT_TRUE(ref.used_linear);
    EXPECT_EQ(plan.files_considered,
              static_cast<int>(plan.files.size()) + plan.files_skipped);

    // Every planned file appears in the reference with the full prefix,
    // and the byte accounting of the tail clamps adds up.
    std::uint64_t clamped = 0;
    for (const FilePlan& p : plan.files) {
      EXPECT_LE(p.fetch_records, p.prefix_records);
      clamped += (p.prefix_records - p.fetch_records) * record;
      const auto it =
          std::find_if(ref.files.begin(), ref.files.end(),
                       [&](const FilePlan& r) { return r.file == p.file; });
      ASSERT_NE(it, ref.files.end());
      EXPECT_EQ(it->fetch_records, p.prefix_records);
    }
    EXPECT_EQ(plan.lod_bytes_skipped, clamped);
    EXPECT_LE(plan.files.size(), ref.files.size());
  }
}

TEST_F(PlannerSuite, KdTreeMatchesTheLinearIntersectionScan) {
  const Dataset ds = Dataset::open(dir_->path());
  const auto& tree = ds.spatial_tree();
  ASSERT_TRUE(tree);
  ASSERT_EQ(tree->file_count(), ds.metadata().files.size());
  Xoshiro256 rng(11);
  for (int iter = 0; iter < 1000; ++iter) {
    const RandomQuery q = random_query(rng, ds.metadata(), 1);
    EXPECT_EQ(tree->query(q.box), ds.metadata().files_intersecting(q.box));
    // Closed variant against its own linear scan.
    std::vector<int> closed;
    for (int fi = 0; fi < ds.file_count(); ++fi) {
      if (ds.metadata()
              .files[static_cast<std::size_t>(fi)]
              .bounds.overlaps_closed(q.box))
        closed.push_back(fi);
    }
    EXPECT_EQ(tree->query_closed(q.box), closed);
  }
}

TEST_F(PlannerSuite, NearestVisitsEveryFileInDistanceOrder) {
  const Dataset ds = Dataset::open(dir_->path());
  const auto& tree = ds.spatial_tree();
  ASSERT_TRUE(tree);
  Xoshiro256 rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    const Vec3d p{rng.uniform(-2.0, 10.0), rng.uniform(-2.0, 3.0),
                  rng.uniform(-2.0, 3.0)};
    std::vector<int> order;
    double last = -1.0;
    tree->visit_nearest(p, [&](int file, double d) {
      EXPECT_GE(d, last);
      last = d;
      order.push_back(file);
      return true;
    });
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), ds.metadata().files.size());
  }
}

TEST_F(PlannerSuite, ZoneEdgeProbes) {
  const Dataset pruned = Dataset::open(dir_->path());
  const Dataset linear = open_linear();
  const DatasetMetadata& meta = pruned.metadata();
  const auto density = meta.schema.index_of("density");
  const std::size_t di = meta.range_index(density, 0);
  const ZoneMapTable zones = ZoneMapTable::load(dir_->path());
  ASSERT_EQ(zones.files.size(), meta.files.size());

  const auto probe = [&](double lo, double hi) {
    const Dataset::RangeFilter rf{density, 0, lo, hi};
    ReadStats ps, ls;
    const auto a = pruned.query(meta.domain, std::span(&rf, 1), -1, 1, &ps);
    const auto b = linear.query(meta.domain, std::span(&rf, 1), -1, 1, &ls);
    EXPECT_EQ(a.byte_size(), b.byte_size()) << "[" << lo << ", " << hi << "]";
    EXPECT_TRUE(a.byte_size() == b.byte_size() &&
                std::equal(a.bytes().begin(), a.bytes().end(),
                           b.bytes().begin()))
        << "[" << lo << ", " << hi << "]";
    EXPECT_LE(ps.particles_scanned, ls.particles_scanned);
    return a.size();
  };

  // Exact zone-boundary filters: the closed interval tests must include
  // records sitting exactly on a recorded min or max, and nextafter
  // nudges just outside must exclude them — identically on both paths.
  for (const FileZones& fz : zones.files) {
    if (fz.zones.empty()) continue;
    const FieldRange zr = fz.zones[di];  // zone 0 of this file
    if (!std::isfinite(zr.min) || !std::isfinite(zr.max)) continue;
    probe(zr.min, zr.min);
    probe(zr.max, zr.max);
    probe(std::nextafter(zr.max, 1e300), 1e300);
    probe(-1e300, std::nextafter(zr.min, -1e300));
  }

  // Negative zero: the -0.0 record (rank 0, record 1) must satisfy
  // [0, 0] and [-0.0, +0.0] on both paths (IEEE: -0.0 == +0.0).
  EXPECT_GE(probe(0.0, 0.0), 1u);
  EXPECT_GE(probe(-0.0, +0.0), 1u);

  // NaN: the poisoned record passes every filter (kernels keep NaN), and
  // its [-inf, +inf] zone keeps its file in every plan.
  EXPECT_GE(probe(8.5e17, 9.5e17), 1u);
}

TEST_F(PlannerSuite, ZoneTailSkipFiresAndStaysExact) {
  if (forced_linear())
    GTEST_SKIP() << "SPIO_PLAN=linear disables zone pruning";
  const Dataset ds = Dataset::open(dir_->path());
  const Dataset linear = open_linear();
  const DatasetMetadata& meta = ds.metadata();
  const auto density = meta.schema.index_of("density");
  const std::size_t di = meta.range_index(density, 0);
  const ZoneMapTable zones = ZoneMapTable::load(dir_->path());

  // Find a probe value admitted by an early zone of some file but by no
  // later zone of it: the plan must clamp that file's fetch (a tail
  // skip). Deterministic for the fixture's fixed seeds.
  bool fired = false;
  for (const FileZones& fz : zones.files) {
    const std::uint32_t nz = zone_file_count(zones.lod, fz.particle_count);
    if (nz < 2) continue;
    const FieldRange first = fz.zones[di];
    if (!std::isfinite(first.min)) continue;
    bool tail_admits = false;
    for (std::uint32_t z = 1; z < nz && !tail_admits; ++z) {
      const FieldRange& zr = fz.zones[z * zones.range_count + di];
      tail_admits = first.min >= zr.min && first.min <= zr.max;
    }
    if (tail_admits) continue;

    const Dataset::RangeFilter rf{density, 0, first.min, first.min};
    const QueryPlan plan = ds.plan_query(meta.domain, std::span(&rf, 1));
    EXPECT_GT(plan.lod_bytes_skipped, 0u);
    EXPECT_TRUE(plan.zone_pruned);
    ReadStats ps;
    const auto a = ds.query(meta.domain, std::span(&rf, 1), -1, 1, &ps);
    const auto b = linear.query(meta.domain, std::span(&rf, 1));
    EXPECT_GT(ps.lod_bytes_skipped, 0u);
    ASSERT_EQ(a.byte_size(), b.byte_size());
    ASSERT_TRUE(
        std::equal(a.bytes().begin(), a.bytes().end(), b.bytes().begin()));
    fired = true;
    break;
  }
  EXPECT_TRUE(fired) << "no zone-boundary probe value found; fixture "
                        "densities no longer discriminate zones";
}

TEST_F(PlannerSuite, SkippedFilesAreNeverOpened) {
  // Fresh dataset (cold engine cache) so the fetch hook observes every
  // real file open of these queries.
  const PatchDecomposition decomp(Box3({0, 0, 0}, {4, 1, 1}), {4, 1, 1});
  TempDir dir("spio-planner-hook");
  WriterConfig cfg;
  cfg.dir = dir.path();
  simmpi::run(4, [&](simmpi::Comm& comm) {
    ParticleBuffer local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 300,
        stream_seed(5, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 300);
    const auto density = local.schema().index_of("density");
    for (std::size_t i = 0; i < local.size(); ++i)
      local.set_f64(i, density, 0, 1000.0 * comm.rank());
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir.path());
  std::mutex mu;
  std::set<std::string> opened;
  ReadEngine::instance().set_fetch_hook(
      [&](const std::filesystem::path& p, std::uint64_t) {
        const std::lock_guard<std::mutex> lock(mu);
        opened.insert(p.filename().string());
      });

  const auto density = ds.metadata().schema.index_of("density");
  const Dataset::RangeFilter rf{density, 0, 1900.0, 2100.0};  // rank 2 only
  const QueryPlan plan =
      ds.plan_query(ds.metadata().domain, std::span(&rf, 1));
  const auto out = ds.query(ds.metadata().domain, std::span(&rf, 1));
  ReadEngine::instance().set_fetch_hook(nullptr);

  EXPECT_GT(plan.files_skipped, 0);
  std::set<std::string> planned;
  for (const FilePlan& p : plan.files) {
    planned.insert(
        ds.metadata().files[static_cast<std::size_t>(p.file)].file_name());
  }
  EXPECT_EQ(planned.size(), 1u);
  for (const std::string& name : opened)
    EXPECT_TRUE(planned.count(name)) << name << " was opened but not planned";
  EXPECT_EQ(out.size(), 300u);
}

TEST_F(PlannerSuite, BoxOutsideTheDomainPlansAndOpensNothing) {
  const Dataset ds = Dataset::open(dir_->path());
  const Box3 outside({20, 20, 20}, {30, 30, 30});
  const QueryPlan plan = ds.plan_query(outside, {});
  EXPECT_EQ(plan.files_considered, 0);
  EXPECT_TRUE(plan.files.empty());

  ReadStats rs;
  const auto out = ds.query_box(outside, -1, 1, &rs);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(rs.files_opened, 0);
  EXPECT_EQ(rs.bytes_read, 0u);

  // The reference plan takes the same early-out (boxes outside the
  // domain are the one case where it, too, considers nothing).
  const QueryPlan ref = ds.plan_reference(outside, {});
  EXPECT_EQ(ref.files_considered, 0);
}

TEST_F(PlannerSuite, LinearModeEnvSwitchesThePlanner) {
  const Dataset linear = open_linear();
  const QueryPlan plan =
      linear.plan_query(linear.metadata().domain, {});
  EXPECT_TRUE(plan.used_linear);
  EXPECT_EQ(plan.files.size(), linear.metadata().files.size());
}

TEST(ZoneLaw, ZoneBoundariesTileTheFile) {
  const LodParams lod{32, 2.0};
  for (const std::uint64_t n : {0ull, 1ull, 31ull, 32ull, 33ull, 600ull,
                                4096ull, 123457ull}) {
    const std::uint32_t nz = zone_file_count(lod, n);
    EXPECT_EQ(zone_begin(lod, 0, n), 0u);
    EXPECT_EQ(zone_begin(lod, nz, n), n);
    for (std::uint32_t z = 0; z < nz; ++z)
      EXPECT_LT(zone_begin(lod, z, n), zone_begin(lod, z + 1, n));
  }
}

}  // namespace
}  // namespace spio
