#pragma once

/// \file units.hpp
/// Byte-size and throughput formatting helpers, and the constants used to
/// translate between the paper's units (GB/s, MB per core) and bytes.

#include <cstdint>
#include <string>

namespace spio {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
/// The paper reports GB/s in the decimal-ish HPC convention; we follow the
/// binary convention consistently and note it in EXPERIMENTS.md.
inline constexpr double kGB = kGiB;

/// Human-readable byte count, e.g. "4.0 MiB", "1.5 GiB".
std::string format_bytes(std::uint64_t bytes);

/// Throughput in GB/s from bytes and seconds. Returns 0 for t <= 0.
double throughput_gbs(std::uint64_t bytes, double seconds);

/// Human readable seconds, e.g. "33.1 ms", "2.5 s".
std::string format_seconds(double seconds);

}  // namespace spio
