/// \file spio_inspect.cpp
/// Command-line dataset inspector and validator.
///
/// Usage:
///   spio_inspect <dataset-dir> [--deep] [--files] [--zones] [--repair]
///
///   --deep    also read every particle and check bounds / field ranges
///             (and verify data-file checksums when recorded)
///   --files   print the full per-file table (default: first 16 files)
///   --zones   print the zone-map sidecar (per-file, per-LOD-level
///             min/max of every field component) and simulate the
///             planner's pruning on the domain's octants
///   --repair  finalize a stale write journal, or delete the artifacts of
///             an interrupted write so the directory can be rewritten

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "core/journal.hpp"
#include "core/query_plan/zone_map.hpp"
#include "core/reader.hpp"
#include "core/timeseries.hpp"
#include "core/validate.hpp"
#include "obs/json.hpp"
#include "obs/postmortem.hpp"
#include "obs/run_record.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace spio;

namespace {

const char* heuristic_name(LodHeuristic h) {
  switch (h) {
    case LodHeuristic::kRandom:
      return "random";
    case LodHeuristic::kStride:
      return "stride";
    case LodHeuristic::kStratified:
      return "stratified";
  }
  return "?";
}

/// Pretty-print `trace.spio.json` when the dataset carries one. Phase
/// columns report the max over ranks (the job-critical path, the view the
/// paper's Fig. 6 plots).
void print_run_record(const std::filesystem::path& dir) {
  if (!obs::run_record_present(dir)) return;
  try {
    const obs::JsonValue rec = obs::load_run_record(dir);
    std::cout << "  run record: " << obs::kRunRecordFile << "\n";
    const auto max_phase = [](const obs::JsonValue& phases,
                              const char* key) {
      double m = 0;
      for (std::size_t i = 0; i < phases.size(); ++i) {
        if (const obs::JsonValue* v = phases.at(i).find(key))
          m = std::max(m, v->as_double());
      }
      return m;
    };
    if (const obs::JsonValue* w = rec.find("write")) {
      const obs::JsonValue& totals = w->at("totals");
      std::cout << "    write: " << w->at("ranks").as_i64() << " ranks, "
                << totals.at("files_written").as_u64() << " files, "
                << format_bytes(totals.at("bytes_written").as_u64())
                << " written, factor "
                << w->at("config").at("factor").as_string() << "\n"
                << "      max phase seconds: setup="
                << max_phase(w->at("phase_seconds"), "setup")
                << " meta_exchange="
                << max_phase(w->at("phase_seconds"), "meta_exchange")
                << " particle_exchange="
                << max_phase(w->at("phase_seconds"), "particle_exchange")
                << " reorder=" << max_phase(w->at("phase_seconds"), "reorder")
                << " file_io=" << max_phase(w->at("phase_seconds"), "file_io")
                << " metadata_io="
                << max_phase(w->at("phase_seconds"), "metadata_io") << "\n";
    }
    if (const obs::JsonValue* r = rec.find("read")) {
      const obs::JsonValue& totals = r->at("totals");
      std::cout << "    read : " << r->at("ranks").as_i64() << " ranks, "
                << totals.at("files_opened").as_u64() << " files, "
                << format_bytes(totals.at("bytes_read").as_u64())
                << " read, amplification "
                << totals.at("read_amplification").as_double() << "\n"
                << "      max phase seconds: file_io="
                << max_phase(r->at("phase_seconds"), "file_io")
                << " exchange="
                << max_phase(r->at("phase_seconds"), "exchange") << "\n";
    }
  } catch (const Error& e) {
    std::cout << "  run record: unreadable (" << e.what() << ")\n";
  }
}

/// One-screen summary of `profile.spio.json` when the dataset carries a
/// spatial access profile (SPIO_PROFILE, docs/OBSERVABILITY.md). The
/// full grid view lives in `spio_heatmap`.
void print_access_profile(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / "profile.spio.json";
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) return;
  try {
    const std::vector<std::byte> bytes = read_file(path);
    const obs::JsonValue doc = obs::JsonValue::parse(std::string_view(
        reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    if (!doc.is_object() || !doc.contains("format") ||
        doc.at("format").as_string() != "spio.access_profile")
      return;
    const obs::JsonValue& totals = doc.at("totals");
    std::cout << "  access profile: profile.spio.json (see spio_heatmap)\n"
              << "    " << totals.at("accesses").as_u64()
              << " file accesses — "
              << format_bytes(totals.at("bytes_scanned").as_u64())
              << " scanned, "
              << format_bytes(totals.at("bytes_fetched").as_u64())
              << " from disk, "
              << format_bytes(totals.at("bytes_used").as_u64())
              << " surviving filters (amplification "
              << totals.at("read_amplification").as_double() << ")\n"
              << "    " << doc.at("queries").size() << " query record(s), "
              << doc.at("queries_dropped").as_u64() << " dropped, "
              << doc.at("unattributed").as_u64() << " unattributed\n";
    // The three hottest files by bytes scanned, across all datasets in
    // the profile (normally just this one).
    struct Hot {
      const obs::JsonValue* f;
    };
    std::vector<Hot> hot;
    const obs::JsonValue& datasets = doc.at("datasets");
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const obs::JsonValue& files = datasets.at(d).at("files");
      for (std::size_t i = 0; i < files.size(); ++i) {
        const obs::JsonValue* a = files.at(i).find("accesses");
        if (a && a->as_u64() > 0) hot.push_back({&files.at(i)});
      }
    }
    std::sort(hot.begin(), hot.end(), [](const Hot& a, const Hot& b) {
      return a.f->at("bytes_scanned").as_u64() >
             b.f->at("bytes_scanned").as_u64();
    });
    if (hot.size() > 3) hot.resize(3);
    for (const Hot& h : hot) {
      std::cout << "    hot: " << h.f->at("name").as_string() << " — "
                << h.f->at("accesses").as_u64() << " accesses, "
                << format_bytes(h.f->at("bytes_scanned").as_u64())
                << " scanned, amplification "
                << h.f->at("read_amplification").as_double() << "\n";
    }
  } catch (const std::exception& e) {
    std::cout << "  access profile: unreadable (" << e.what() << ")\n";
  }
}

/// `--zones`: dump the zone-map sidecar as a per-file, per-level min/max
/// table, then replay the planner over the domain's eight octants to show
/// what the zones actually buy (files skipped, LOD tail bytes shaved).
void print_zone_maps(const Dataset& ds, bool all_files) {
  const DatasetMetadata& m = ds.metadata();
  const ZoneMapTable* zones = ds.planner().zones();
  if (zones == nullptr) {
    std::cout << (m.has_zone_maps
                      ? "zones: sidecar missing or unusable — the planner "
                        "runs zone-free (see warnings below)\n"
                      : "zones: none recorded (written with "
                        "write_zone_maps=false?)\n");
    return;
  }

  // Column per field component, row per (file, LOD level).
  std::vector<std::string> headers = {"file", "level", "records"};
  for (const FieldDesc& f : m.schema.fields()) {
    if (f.components == 1) {
      headers.push_back(f.name);
    } else {
      for (std::uint32_t c = 0; c < f.components; ++c)
        headers.push_back(f.name + "[" + std::to_string(c) + "]");
    }
  }
  const auto fmt = [](const FieldRange& r) {
    std::ostringstream s;
    s << std::setprecision(4) << r.min << ".." << r.max;
    return s.str();
  };
  Table t("zone maps", headers);
  const std::size_t limit =
      all_files ? m.files.size() : std::min<std::size_t>(16, m.files.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const FileRecord& f = m.files[i];
    const FileZones* fz = zones->find(f.aggregator_rank);
    if (fz == nullptr) continue;
    const std::uint32_t levels = zone_file_count(zones->lod, fz->particle_count);
    for (std::uint32_t z = 0; z < levels; ++z) {
      Table& row = t.row();
      row.add(f.file_name())
          .add_int(static_cast<long long>(z))
          .add_int(static_cast<long long>(
              zone_begin(zones->lod, z + 1, fz->particle_count) -
              zone_begin(zones->lod, z, fz->particle_count)));
      for (std::size_t c = 0; c < zones->range_count; ++c)
        row.add(fmt(fz->zones[z * zones->range_count + c]));
    }
  }
  t.print(std::cout);
  if (limit < m.files.size())
    std::cout << "(" << m.files.size() - limit
              << " more files; pass --files to list all)\n";

  // Prune simulation: what the planner does with these zones for the
  // canonical "read a corner of the domain" queries.
  std::cout << "prune simulation (8 domain octants, all LOD levels):\n";
  const Vec3d mid = {(m.domain.lo.x + m.domain.hi.x) / 2,
                     (m.domain.lo.y + m.domain.hi.y) / 2,
                     (m.domain.lo.z + m.domain.hi.z) / 2};
  for (int o = 0; o < 8; ++o) {
    const Vec3d lo = {o & 1 ? mid.x : m.domain.lo.x,
                      o & 2 ? mid.y : m.domain.lo.y,
                      o & 4 ? mid.z : m.domain.lo.z};
    const Vec3d hi = {o & 1 ? m.domain.hi.x : mid.x,
                      o & 2 ? m.domain.hi.y : mid.y,
                      o & 4 ? m.domain.hi.z : mid.z};
    const QueryPlan plan = ds.plan_query(Box3(lo, hi), {}, -1, 1);
    std::uint64_t fetch_bytes = 0;
    for (const FilePlan& fp : plan.files)
      fetch_bytes += fp.fetch_records * m.schema.record_size();
    std::cout << "  octant " << o << ": " << plan.files.size() << "/"
              << plan.files_considered << " files read ("
              << plan.files_skipped << " skipped), "
              << format_bytes(fetch_bytes) << " fetched, "
              << format_bytes(plan.lod_bytes_skipped)
              << " of LOD tails skipped\n";
  }
}

int inspect_dataset(const std::filesystem::path& dir, bool deep,
                    bool all_files, bool show_zones) {
  const Dataset ds = Dataset::open(dir);
  const DatasetMetadata& m = ds.metadata();

  std::cout << "dataset: " << dir.string() << "\n"
            << "  particles : " << m.total_particles << " ("
            << format_bytes(m.total_particles * m.schema.record_size())
            << ")\n"
            << "  files     : " << m.files.size() << "\n"
            << "  domain    : " << m.domain << "\n"
            << "  LOD       : P=" << m.lod.P << " S=" << m.lod.S << " ("
            << ds.level_count(1) << " levels for 1 reader), "
            << heuristic_name(m.heuristic) << " order\n"
            << "  metadata  : bounds=" << (m.has_bounds ? "yes" : "no")
            << " field-ranges=" << (m.has_field_ranges ? "yes" : "no")
            << "\n  integrity : journal="
            << (WriteJournal::present(dir) ? "OPEN (interrupted write?)"
                                           : "closed")
            << " checksums=" << (ChecksumTable::present(dir) ? "yes" : "no")
            << " zones="
            << (ds.planner().zones() != nullptr
                    ? "yes"
                    : (m.has_zone_maps ? "UNUSABLE (fallback)" : "no"))
            << " postmortem="
            << (obs::postmortem_present(dir)
                    ? "PRESENT (see spio_trace --postmortem)"
                    : "none")
            << "\n  schema    : " << m.schema.record_size()
            << " B/particle\n";
  for (const FieldDesc& f : m.schema.fields()) {
    std::cout << "    " << f.name << " "
              << (f.type == FieldType::kF64 ? "f64" : "f32") << " x"
              << f.components << "\n";
  }
  print_run_record(dir);
  print_access_profile(dir);
  if (show_zones) print_zone_maps(ds, all_files);

  Table t("files", {"file", "particles", "bytes", "bounds"});
  const std::size_t limit = all_files ? m.files.size()
                                      : std::min<std::size_t>(16, m.files.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const FileRecord& f = m.files[i];
    std::ostringstream b;
    if (m.has_bounds) b << f.bounds;
    t.row()
        .add(f.file_name())
        .add_int(static_cast<long long>(f.particle_count))
        .add(format_bytes(f.particle_count * m.schema.record_size()))
        .add(b.str());
  }
  t.print(std::cout);
  if (limit < m.files.size()) {
    std::cout << "(" << m.files.size() - limit
              << " more files; pass --files to list all)\n";
  }

  const ValidationReport report = validate_dataset(dir, deep);
  for (const std::string& w : report.warnings)
    std::cout << "warning: " << w << "\n";
  for (const std::string& e : report.errors)
    std::cout << "ERROR: " << e << "\n";
  std::cout << (report.ok() ? "dataset OK" : "dataset INVALID")
            << (deep ? " (deep check)" : "") << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: spio_inspect <dataset-dir> [--deep] [--files] "
                 "[--zones] [--repair]\n";
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  bool deep = false, all_files = false, repair = false, show_zones = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deep") == 0) deep = true;
    else if (std::strcmp(argv[i], "--files") == 0) all_files = true;
    else if (std::strcmp(argv[i], "--zones") == 0) show_zones = true;
    else if (std::strcmp(argv[i], "--repair") == 0) repair = true;
    else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }

  try {
    if (repair) {
      switch (check_and_repair(dir, /*remove_partial=*/true)) {
        case RepairOutcome::kClean:
          std::cout << "no journal: nothing to repair\n";
          break;
        case RepairOutcome::kFinalizedJournal:
          std::cout << "finalized stale journal; dataset is complete\n";
          break;
        case RepairOutcome::kRemovedPartial:
          std::cout << "removed the artifacts of an interrupted write\n";
          return 0;
        case RepairOutcome::kIncomplete:
          break;  // unreachable with remove_partial
      }
    }
    // A series base directory? Inspect every step.
    if (std::filesystem::exists(dir / TimeSeries::kIndexName)) {
      const TimeSeries series = TimeSeries::open(dir);
      std::cout << "time series with " << series.step_count()
                << " step(s)\n\n";
      int rc = 0;
      for (const int step : series.steps()) {
        std::cout << "--- step " << step << " ---\n";
        rc |= inspect_dataset(TimeSeries::step_dir(dir, step), deep,
                              all_files, show_zones);
        std::cout << "\n";
      }
      return rc;
    }
    return inspect_dataset(dir, deep, all_files, show_zones);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
