#include "obs/stats_export.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/access_profile.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace spio::obs {

namespace {

/// Cumulative-counter delta between two snapshots (0 when absent).
std::uint64_t delta(const MetricsRegistry::Snapshot& now,
                    const MetricsRegistry::Snapshot& prev,
                    const std::string& name) {
  const auto it = now.counters.find(name);
  if (it == now.counters.end()) return 0;
  const auto pit = prev.counters.find(name);
  const std::uint64_t before = pit == prev.counters.end() ? 0 : pit->second;
  return it->second >= before ? it->second - before : 0;
}

std::uint64_t counter_of(const MetricsRegistry::Snapshot& s,
                         const std::string& name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

double gauge_of(const MetricsRegistry::Snapshot& s, const std::string& name) {
  const auto it = s.gauges.find(name);
  return it == s.gauges.end() ? 0.0 : it->second;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

std::uint64_t slo_budget_us() {
  static const std::uint64_t us = [] {
    const char* v = std::getenv("SPIO_SLO_MS");
    if (!v || !*v) return std::uint64_t{0};
    const long long ms = std::atoll(v);
    return ms > 0 ? static_cast<std::uint64_t>(ms) * 1000 : std::uint64_t{0};
  }();
  return us;
}

TelemetryExporter& TelemetryExporter::instance() {
  static TelemetryExporter* e = new TelemetryExporter();  // leaked: see Tracer
  return *e;
}

bool TelemetryExporter::parse_spec(std::string_view spec,
                                   std::chrono::milliseconds& interval,
                                   std::string& path) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  long long ms = 0;
  for (char c : spec.substr(0, colon)) {
    if (c < '0' || c > '9') return false;
    ms = ms * 10 + (c - '0');
    if (ms > 3600'000) return false;  // cap at an hour; reject overflow
  }
  if (ms <= 0) return false;
  interval = std::chrono::milliseconds(ms);
  path = std::string(spec.substr(colon + 1));
  return true;
}

bool TelemetryExporter::start(std::chrono::milliseconds interval,
                              std::string path) {
  std::lock_guard lk(mu_);
  if (thread_.joinable()) return false;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  file_ = f;
  path_ = std::move(path);
  interval_ = interval;
  stop_requested_ = false;
  seq_ = 0;
  last_ts_us_ = now_us();
  prev_ = MetricsRegistry::global().snapshot();
  detail::g_telemetry.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { run_loop(); });
  static const bool at_exit_registered = [] {
    std::atexit([] { TelemetryExporter::instance().stop(); });
    return true;
  }();
  (void)at_exit_registered;
  return true;
}

void TelemetryExporter::stop() {
  std::thread t;
  {
    std::lock_guard lk(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    t = std::move(thread_);
  }
  cv_.notify_all();
  t.join();
  std::lock_guard lk(mu_);
  emit_sample(/*final_sample=*/true);
  detail::g_telemetry.store(false, std::memory_order_relaxed);
  std::fclose(file_);
  file_ = nullptr;
}

void TelemetryExporter::run_loop() {
  std::unique_lock lk(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lk, interval_, [this] { return stop_requested_; })) break;
    emit_sample(/*final_sample=*/false);
  }
}

void TelemetryExporter::emit_sample(bool final_sample) {
  auto& reg = MetricsRegistry::global();
  const MetricsRegistry::Snapshot now = reg.snapshot();
  const double ts = now_us();
  const double dt_s = (ts - last_ts_us_) / 1e6;

  JsonValue line = JsonValue::object();
  line.set("format", JsonValue::string("spio.stats"));
  line.set("version", JsonValue::number(1));
  line.set("seq", JsonValue::number(seq_));
  line.set("ts_us", JsonValue::number(ts));
  line.set("interval_ms",
           JsonValue::number(static_cast<std::uint64_t>(interval_.count())));
  line.set("final", JsonValue::boolean(final_sample));

  JsonValue derived = JsonValue::object();
  const std::uint64_t completed = delta(now, prev_, "service.completed");
  derived.set("qps", JsonValue::number(
                         dt_s > 0 ? static_cast<double>(completed) / dt_s
                                  : 0.0));
  derived.set("queue_depth",
              JsonValue::number(gauge_of(now, "service.queue_depth")));
  derived.set("queue_depth_max",
              JsonValue::number(gauge_of(now, "service.queue_depth_max")));
  const std::uint64_t hits = delta(now, prev_, "reader.cache.hits");
  const std::uint64_t misses = delta(now, prev_, "reader.cache.misses");
  derived.set("cache_hit_rate", JsonValue::number(ratio(hits, hits + misses)));
  derived.set("coalesce_rate",
              JsonValue::number(
                  ratio(delta(now, prev_, "service.coalesced"), completed)));
  const std::uint64_t sf_leader =
      delta(now, prev_, "service.singleflight_leader");
  const std::uint64_t sf_follower =
      delta(now, prev_, "service.singleflight_follower");
  derived.set("singleflight_follower_share",
              JsonValue::number(ratio(sf_follower, sf_leader + sf_follower)));
  derived.set("slo_ms", JsonValue::number(slo_budget_us() / 1000));
  derived.set("slo_violations",
              JsonValue::number(delta(now, prev_, "service.slo_violations")));
  derived.set("slo_violations_total",
              JsonValue::number(counter_of(now, "service.slo_violations")));
  // Windowed read amplification: disk bytes per returned byte over this
  // tick only (the cumulative figure lives in the
  // reader.read_amplification gauge below).
  derived.set("read_amplification",
              JsonValue::number(ratio(delta(now, prev_, "reader.bytes_read"),
                                      delta(now, prev_,
                                            "reader.bytes_returned"))));
  line.set("derived", std::move(derived));

  // Top-N hot files this tick from the spatial access profiler: ranked
  // by bytes *scanned* (not fetched — a fully-warm hot file reads no
  // disk but is still hot).
  {
    struct Hot {
      const AccessProfiler::FileSnapshot* f;
      std::uint64_t bytes;
      std::uint64_t accesses;
    };
    const std::vector<AccessProfiler::FileSnapshot> files =
        AccessProfiler::instance().snapshot_files(/*touched_only=*/true);
    std::vector<Hot> hot;
    std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>>
        cur;
    cur.reserve(files.size());
    for (const auto& f : files) {
      const std::string key = f.dataset + '/' + f.name;
      cur.emplace(key, std::make_pair(f.bytes_scanned, f.accesses));
      const auto pit = prev_hot_.find(key);
      const std::uint64_t pb = pit == prev_hot_.end() ? 0 : pit->second.first;
      const std::uint64_t pa = pit == prev_hot_.end() ? 0 : pit->second.second;
      if (f.bytes_scanned > pb)
        hot.push_back(Hot{&f, f.bytes_scanned - pb, f.accesses - pa});
    }
    std::sort(hot.begin(), hot.end(),
              [](const Hot& a, const Hot& b) { return a.bytes > b.bytes; });
    if (hot.size() > 5) hot.resize(5);
    JsonValue hot_files = JsonValue::array();
    for (const Hot& h : hot) {
      JsonValue e = JsonValue::object();
      e.set("file", JsonValue::string(h.f->name));
      e.set("dataset", JsonValue::string(h.f->dataset));
      e.set("bytes", JsonValue::number(h.bytes));
      e.set("accesses", JsonValue::number(h.accesses));
      hot_files.push_back(std::move(e));
    }
    line.set("hot_files", std::move(hot_files));
    prev_hot_ = std::move(cur);
  }

  JsonValue windows = JsonValue::object();
  for (const auto& [name, w] : now.windows) {
    JsonValue v = JsonValue::object();
    v.set("count", JsonValue::number(w.count));
    v.set("mean", JsonValue::number(
                      w.count ? static_cast<double>(w.sum) /
                                    static_cast<double>(w.count)
                              : 0.0));
    v.set("p50", JsonValue::number(w.p50));
    v.set("p95", JsonValue::number(w.p95));
    v.set("p99", JsonValue::number(w.p99));
    v.set("total_count", JsonValue::number(w.total_count));
    windows.set(name, std::move(v));
  }
  line.set("windows", std::move(windows));

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : now.counters)
    counters.set(name, JsonValue::number(v));
  line.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : now.gauges)
    gauges.set(name, JsonValue::number(v));
  line.set("gauges", std::move(gauges));

  // One write + flush per line: a concurrent tail never sees a torn
  // record, and a crash costs at most the in-progress tick.
  std::string text = line.dump();
  text.push_back('\n');
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fflush(file_);

  // Start the next window: rotate quantile epochs and re-arm the
  // queue-depth watermark at the current depth.
  reg.rotate_windows();
  reg.gauge("service.queue_depth_max")
      .set(gauge_of(now, "service.queue_depth"));

  prev_ = now;
  last_ts_us_ = ts;
  ++seq_;
}

void TelemetryExporter::init_from_env() {
  const char* spec = std::getenv("SPIO_STATS");
  if (!spec || !*spec) return;
  std::chrono::milliseconds interval{0};
  std::string path;
  if (!parse_spec(spec, interval, path)) return;
  start(interval, std::move(path));
}

}  // namespace spio::obs
