#include "obs/metrics.hpp"

namespace spio::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: see Tracer
  return *r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

WindowedHistogram& MetricsRegistry::windowed(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) {
    it = windows_
             .emplace(std::string(name), std::make_unique<WindowedHistogram>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramData d;
    d.count = h->count();
    d.sum = h->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->bucket(i) > 0)
        d.buckets.emplace_back(Histogram::bucket_bound(i), h->bucket(i));
    }
    s.histograms[name] = std::move(d);
  }
  for (const auto& [name, w] : windows_) {
    const auto m = w->merged();
    WindowedData d;
    d.count = m.count;
    d.sum = m.sum;
    d.p50 = m.p50;
    d.p95 = m.p95;
    d.p99 = m.p99;
    d.total_count = w->total_count();
    d.total_sum = w->total_sum();
    s.windows[name] = d;
  }
  return s;
}

void MetricsRegistry::rotate_windows() {
  std::lock_guard lk(mu_);
  for (const auto& [name, w] : windows_) w->rotate();
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, w] : windows_) w->reset();
}

}  // namespace spio::obs
