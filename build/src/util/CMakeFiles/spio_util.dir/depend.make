# Empty dependencies file for spio_util.
# This may be replaced when dependencies are built.
