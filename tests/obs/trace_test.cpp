#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/temp_dir.hpp"

namespace spio::obs {
namespace {

/// Every tracer test runs against the process-wide singleton, so each
/// starts from a clean, disabled state and leaves one behind.
class Trace : public ::testing::Test {
 protected:
  void SetUp() override {
    disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    disable();
    Tracer::instance().clear();
  }
};

TEST_F(Trace, DisabledSpansRecordNothing) {
  const std::size_t before = Tracer::instance().event_count();
  {
    ScopedSpan s("t.disabled", "test");
    ScopedSpan nested("t.disabled.inner", "test");
  }
  PhaseSpan p("test");
  p.begin("t.phase");
  p.end();
  Tracer::instance().record_complete("manual", "test", 0, 1);  // bypasses gate
  EXPECT_EQ(Tracer::instance().event_count(), before + 1);
}

TEST_F(Trace, ScopedSpanRecordsCompleteEvent) {
  enable();
  {
    ScopedSpan s("t.outer", "test");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 1u);

  const JsonValue doc = JsonValue::parse(Tracer::instance().chrome_json());
  const JsonValue& events = doc.at("traceEvents");
  // thread_name metadata for this thread's track + the span itself.
  bool found = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.at("ph").as_string() != "X") continue;
    found = true;
    EXPECT_EQ(e.at("name").as_string(), "t.outer");
    EXPECT_EQ(e.at("cat").as_string(), "test");
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
  }
  EXPECT_TRUE(found);
}

TEST_F(Trace, EndIsIdempotentAndEarly) {
  enable();
  ScopedSpan s("t.early", "test");
  s.end();
  s.end();
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
}

TEST_F(Trace, NestedSpansStayWithinParent) {
  enable();
  {
    ScopedSpan outer("t.outer", "test");
    {
      ScopedSpan inner("t.inner", "test");
    }
  }
  const JsonValue doc = JsonValue::parse(Tracer::instance().chrome_json());
  const JsonValue& events = doc.at("traceEvents");
  double outer_ts = -1, outer_end = -1, inner_ts = -1, inner_end = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.at("ph").as_string() != "X") continue;
    const double ts = e.at("ts").as_double();
    const double end = ts + e.at("dur").as_double();
    if (e.at("name").as_string() == "t.outer") {
      outer_ts = ts;
      outer_end = end;
    } else {
      inner_ts = ts;
      inner_end = end;
    }
  }
  ASSERT_GE(outer_ts, 0);
  ASSERT_GE(inner_ts, 0);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST_F(Trace, PhaseSpanEmitsBackToBackPhases) {
  enable();
  PhaseSpan p("test");
  p.begin("t.phase_a");
  p.begin("t.phase_b");  // closes a, opens b
  p.end();
  EXPECT_EQ(Tracer::instance().event_count(), 2u);
}

TEST_F(Trace, InstantEventCarriesArgument) {
  enable();
  Tracer::instance().record_instant("t.instant", "test", 12345, "bytes");
  const JsonValue doc = JsonValue::parse(Tracer::instance().chrome_json());
  const JsonValue& events = doc.at("traceEvents");
  bool found = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.at("ph").as_string() != "i") continue;
    found = true;
    EXPECT_EQ(e.at("name").as_string(), "t.instant");
    EXPECT_EQ(e.at("args").at("bytes").as_u64(), 12345u);
  }
  EXPECT_TRUE(found);
}

TEST_F(Trace, RankThreadsGetTheirOwnTracks) {
  enable();
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([r] {
      const ThreadRankGuard guard(r);
      ScopedSpan s("t.ranked", "test");
    });
  }
  for (auto& t : threads) t.join();

  const JsonValue doc = JsonValue::parse(Tracer::instance().chrome_json());
  const JsonValue& events = doc.at("traceEvents");
  std::set<std::int64_t> span_tids, named_tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.at("ph").as_string() == "X")
      span_tids.insert(e.at("tid").as_i64());
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name")
      named_tids.insert(e.at("tid").as_i64());
  }
  EXPECT_EQ(span_tids, (std::set<std::int64_t>{0, 1, 2}));
  // Every rank track is named for the trace viewer.
  for (const auto tid : span_tids) EXPECT_EQ(named_tids.count(tid), 1u);
}

TEST_F(Trace, WriteChromeTraceProducesLoadableFile) {
  enable();
  {
    ScopedSpan s("t.file", "test");
  }
  TempDir dir("spio-trace");
  const auto path = dir.path() / "trace.json";
  Tracer::instance().write_chrome_trace(path);
  ASSERT_TRUE(std::filesystem::exists(path));

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = JsonValue::parse(ss.str());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST_F(Trace, ClearDropsEverything) {
  enable();
  {
    ScopedSpan s("t.clearme", "test");
  }
  EXPECT_GT(Tracer::instance().event_count(), 0u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

}  // namespace
}  // namespace spio::obs
