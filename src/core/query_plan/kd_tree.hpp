#pragma once

/// \file kd_tree.hpp
/// An immutable balanced k-d tree (bounding-volume flavour) over the
/// partition bounding boxes of one dataset. Built once at `Dataset::open`
/// (or parsed from the metadata footer, format v3), it answers the three
/// spatial planning questions in O(log F + hits) instead of the linear
/// metadata scan:
///
///   - `query`         open-overlap box search (`Box3::overlaps`), the
///                     exact candidate set of `files_intersecting`;
///   - `query_closed`  closed-overlap search, the conservative candidate
///                     set distributed reads need for tile ownership;
///   - `visit_nearest` best-first traversal by minimum distance, driving
///                     the kNN expanding-ball search.
///
/// The build is deterministic (median split on the widest centroid axis,
/// ties broken by file index), so the serialized footer is a pure
/// function of the file records and golden-byte tests stay frozen.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/box.hpp"

namespace spio {

class BinaryReader;
class BinaryWriter;

class BoxKdTree {
 public:
  BoxKdTree() = default;

  /// Deterministic balanced build over `boxes` (one per file, indices are
  /// preserved as the leaf payload). Every box must be non-empty.
  static BoxKdTree build(const std::vector<Box3>& boxes);

  bool empty() const { return nodes_.empty(); }
  /// Number of file boxes the tree indexes.
  std::size_t file_count() const { return leaf_files_.size(); }
  /// Union of every indexed box. Precondition: !empty().
  const Box3& root_bounds() const;

  /// Indices of the files whose boxes share volume with `box`
  /// (`Box3::overlaps`), ascending — identical to the linear
  /// `files_intersecting` scan.
  std::vector<int> query(const Box3& box) const;

  /// Conservative variant: boxes that merely touch `box` count
  /// (`Box3::overlaps_closed`), ascending.
  std::vector<int> query_closed(const Box3& box) const;

  /// Best-first traversal: `visit(file, min_dist)` is called for every
  /// file in ascending order of its box's minimum distance to `p`;
  /// return false to stop the search.
  void visit_nearest(
      const Vec3d& p,
      const std::function<bool(int file, double min_dist)>& visit) const;

  /// Footer encoding (docs/FORMAT.md): node and leaf arrays, preorder.
  void serialize(BinaryWriter& w) const;

  /// Parse and structurally validate a footer against the dataset's file
  /// boxes: child links must form a preorder tree, every file index must
  /// appear in exactly one leaf, and every node's box must equal the
  /// exact union of its files' boxes. Throws `FormatError` on violation.
  static BoxKdTree deserialize(BinaryReader& r,
                               const std::vector<Box3>& boxes);

  bool operator==(const BoxKdTree&) const = default;

 private:
  struct Node {
    Box3 bounds;             // union of the member file boxes
    std::int32_t left = -1;  // children (preorder ids); -1 = leaf
    std::int32_t right = -1;
    std::uint32_t first = 0;  // leaf: [first, first+count) into leaf_files_
    std::uint32_t count = 0;

    bool is_leaf() const { return left < 0; }
    bool operator==(const Node&) const = default;
  };

  template <typename Overlap>
  std::vector<int> query_impl(const Box3& box, Overlap&& overlap) const;

  std::vector<Node> nodes_;           // preorder; [0] is the root
  std::vector<std::int32_t> leaf_files_;  // file indices grouped per leaf
  std::vector<Box3> boxes_;  // the indexed file boxes (not serialized)
};

}  // namespace spio
