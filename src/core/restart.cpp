#include "core/restart.hpp"

namespace spio {

ParticleBuffer restart_read(simmpi::Comm& comm,
                            const PatchDecomposition& decomp,
                            const std::filesystem::path& dir,
                            ReadStats* stats) {
  SPIO_CHECK(comm.size() == decomp.rank_count(), ConfigError,
             "restart decomposition has " << decomp.rank_count()
                                          << " patches for a job of "
                                          << comm.size() << " ranks");
  const Dataset ds = Dataset::open(dir);
  SPIO_CHECK(decomp.domain().contains_box(ds.metadata().domain), ConfigError,
             "restart domain " << decomp.domain()
                               << " does not contain the dataset domain "
                               << ds.metadata().domain);

  // Patch tiles are half-open; particles exactly on the dataset domain's
  // upper face must land in the boundary patches, so those patches' query
  // boxes are nudged past the face.
  Box3 patch = decomp.patch(comm.rank());
  const Box3& domain = decomp.domain();
  for (int a = 0; a < 3; ++a) {
    if (patch.hi[a] >= domain.hi[a]) {
      patch.hi[a] += 1e-9 * (domain.hi[a] - domain.lo[a]) + 1e-300;
    }
  }
  return ds.query_box(patch, /*levels=*/-1, comm.size(), stats);
}

}  // namespace spio
