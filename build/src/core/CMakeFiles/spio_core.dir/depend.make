# Empty dependencies file for spio_core.
# This may be replaced when dependencies are built.
