#include "util/box.hpp"

#include <gtest/gtest.h>

namespace spio {
namespace {

TEST(Box3, EmptyByDefault) {
  Box3 b;
  EXPECT_TRUE(b.is_empty());
  EXPECT_EQ(b.volume(), 0.0);
}

TEST(Box3, UnitCube) {
  const Box3 u = Box3::unit();
  EXPECT_FALSE(u.is_empty());
  EXPECT_DOUBLE_EQ(u.volume(), 1.0);
  EXPECT_EQ(u.center(), Vec3d(0.5, 0.5, 0.5));
  EXPECT_EQ(u.size(), Vec3d(1, 1, 1));
}

TEST(Box3, HalfOpenContainment) {
  const Box3 b({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({0.999, 0.5, 0.5}));
  EXPECT_FALSE(b.contains({1, 0.5, 0.5}));  // hi face excluded
  EXPECT_FALSE(b.contains({-0.001, 0.5, 0.5}));
}

TEST(Box3, ClosedContainmentIncludesHiFace) {
  const Box3 b({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(b.contains_closed({1, 1, 1}));
  EXPECT_FALSE(b.contains_closed({1.0001, 1, 1}));
}

TEST(Box3, ContainsBox) {
  const Box3 outer({0, 0, 0}, {10, 10, 10});
  EXPECT_TRUE(outer.contains_box(Box3({1, 1, 1}, {9, 9, 9})));
  EXPECT_TRUE(outer.contains_box(outer));
  EXPECT_FALSE(outer.contains_box(Box3({1, 1, 1}, {11, 9, 9})));
}

TEST(Box3, OverlapIsOpen) {
  const Box3 a({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(a.overlaps(Box3({0.5, 0.5, 0.5}, {2, 2, 2})));
  // Sharing only a face is not an overlap (no shared volume).
  EXPECT_FALSE(a.overlaps(Box3({1, 0, 0}, {2, 1, 1})));
  EXPECT_FALSE(a.overlaps(Box3({5, 5, 5}, {6, 6, 6})));
}

TEST(Box3, ExtendByPoints) {
  Box3 b = Box3::empty();
  b.extend(Vec3d{1, 2, 3});
  b.extend(Vec3d{-1, 5, 0});
  EXPECT_EQ(b.lo, Vec3d(-1, 2, 0));
  EXPECT_EQ(b.hi, Vec3d(1, 5, 3));
}

TEST(Box3, ExtendByBoxIgnoresEmpty) {
  Box3 b({0, 0, 0}, {1, 1, 1});
  b.extend(Box3::empty());
  EXPECT_EQ(b, Box3({0, 0, 0}, {1, 1, 1}));
  b.extend(Box3({2, 2, 2}, {3, 3, 3}));
  EXPECT_EQ(b, Box3({0, 0, 0}, {3, 3, 3}));
}

TEST(Box3, EmptyExtendedByPointIsThatPoint) {
  Box3 b = Box3::empty();
  b.extend(Vec3d{4, 4, 4});
  EXPECT_EQ(b.lo, Vec3d(4, 4, 4));
  EXPECT_EQ(b.hi, Vec3d(4, 4, 4));
  EXPECT_TRUE(b.is_empty());  // a point has no volume
}

TEST(Box3, Intersection) {
  const Box3 a({0, 0, 0}, {2, 2, 2});
  const Box3 b({1, 1, 1}, {3, 3, 3});
  EXPECT_EQ(Box3::intersection(a, b), Box3({1, 1, 1}, {2, 2, 2}));
  EXPECT_TRUE(
      Box3::intersection(a, Box3({5, 5, 5}, {6, 6, 6})).is_empty());
}

TEST(Box3, VolumeOfDegenerateBoxIsZero) {
  EXPECT_EQ(Box3({0, 0, 0}, {1, 1, 0}).volume(), 0.0);
  EXPECT_EQ(Box3({0, 0, 0}, {0, 1, 1}).volume(), 0.0);
}

TEST(Box3i, CellCountAndContains) {
  const Box3i b({0, 0, 0}, {2, 3, 4});
  EXPECT_EQ(b.cell_count(), 24);
  EXPECT_TRUE(b.contains({1, 2, 3}));
  EXPECT_FALSE(b.contains({2, 0, 0}));
  EXPECT_EQ(Box3i({1, 1, 1}, {1, 5, 5}).cell_count(), 0);
}

}  // namespace
}  // namespace spio
