#pragma once

/// \file table.hpp
/// Column-aligned text tables for the benchmark harnesses. Every figure
/// reproduction prints its series through this type so the output matches
/// the row/series structure the paper reports, and can also be dumped as
/// CSV for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace spio {

/// A simple table: a title, a header row and data rows of strings.
/// Cells are formatted by the caller via the typed `add_*` helpers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Begin a new row; subsequent `add_*` calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add_int(long long v);
  /// Fixed-precision floating point cell.
  Table& add_double(double v, int precision = 3);
  /// Scientific-looking compact cell for values spanning many decades.
  Table& add_sci(double v, int precision = 3);

  const std::string& title() const { return title_; }
  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Render with aligned columns, including title and header rule.
  void print(std::ostream& os) const;
  /// Render as RFC-4180-ish CSV (no quoting of commas; cells are numeric).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spio
