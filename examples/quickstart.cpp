/// \file quickstart.cpp
/// Minimal end-to-end tour of the spio API:
///   1. run an SPMD job (threads as ranks),
///   2. generate particles on each rank's patch,
///   3. write a spatially-aware dataset with a (2,2,2) partition factor,
///   4. reopen it (any process count) and run spatial + LOD queries.
///
/// Usage: quickstart [output-dir]   (default: ./quickstart_dataset)

#include <iostream>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "quickstart_dataset";

  // --- the simulation side: 16 ranks, each owning one patch of a 4x4x1
  // decomposition of the unit cube, 10,000 particles per rank.
  constexpr int kRanks = 16;
  constexpr std::uint64_t kPerRank = 10000;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});

  std::cout << "writing " << kRanks * kPerRank << " particles with "
            << kRanks << " ranks to " << dir << " ...\n";

  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    // Each rank's particles: the Uintah-style 124-byte record (position,
    // stress tensor, density, volume, id, type).
    const ParticleBuffer local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(2024, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);

    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 1};  // aggregate 2x2 patch blocks: 4 files
    cfg.lod = {32, 2.0};     // paper defaults: P=32, S=2

    const WriteStats stats = write_dataset(comm, decomp, local, cfg);
    if (comm.rank() == 0) {
      std::cout << "  partitions: " << stats.partition_count
                << ", aligned fast path: "
                << (stats.used_aligned_fast_path ? "yes" : "no") << "\n";
    }
  });

  // --- the analysis side: open the dataset like a post-processing tool.
  const Dataset ds = Dataset::open(dir);
  std::cout << "dataset: " << ds.metadata().total_particles
            << " particles in " << ds.file_count() << " data file(s), "
            << "domain " << ds.metadata().domain << "\n";

  // Spatial query: only the files whose bounds intersect the box are read.
  const Box3 corner({0, 0, 0}, {0.5, 0.5, 1.0});
  ReadStats rs;
  const ParticleBuffer hits = ds.query_box(corner, -1, 1, &rs);
  std::cout << "box query " << corner << ": " << hits.size()
            << " particles, touched " << rs.files_opened << "/"
            << ds.file_count() << " files, read "
            << format_bytes(rs.bytes_read) << "\n";

  // LOD query: read only the first three levels — a coarse, uniform
  // sample of the same region, at a fraction of the bytes.
  ReadStats lod_rs;
  const ParticleBuffer coarse = ds.query_box(corner, /*levels=*/3, 1, &lod_rs);
  std::cout << "same query at LOD 3: " << coarse.size() << " particles, "
            << format_bytes(lod_rs.bytes_read) << " read ("
            << ds.level_count(1) << " levels available)\n";
  return 0;
}
