#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Particles that drifted outside their owners' patches (a checkpoint
/// taken mid-advection). The writer must detect the spill, repair the
/// communication sets via an extent exchange, and still place every
/// particle in the spatially-correct file.

std::set<double> id_set(const ParticleBuffer& buf) {
  const auto id = buf.schema().index_of("id");
  std::set<double> out;
  for (std::size_t i = 0; i < buf.size(); ++i) out.insert(buf.get_f64(i, id));
  return out;
}

ParticleBuffer drifted_particles(int rank, const PatchDecomposition& decomp,
                                 std::uint64_t n, double drift) {
  ParticleBuffer buf = workload::uniform(
      Schema::uintah(), decomp.patch(rank), n,
      stream_seed(13, static_cast<std::uint64_t>(rank)),
      static_cast<std::uint64_t>(rank) * n);
  const Box3 domain = decomp.domain();
  for (std::size_t i = 0; i < buf.size(); ++i) {
    Vec3d p = buf.position(i);
    p.x += drift;  // everyone drifts +x
    if (p.x >= domain.hi.x) p.x -= domain.size().x;  // periodic wrap
    buf.set_position(i, p);
  }
  return buf;
}

TEST(SpilledParticles, RoundTripWithDrift) {
  constexpr int kRanks = 16;
  constexpr std::uint64_t kPerRank = 150;
  const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});
  TempDir dir("spio-spill");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};

  WriteStats job{};
  std::mutex mu;
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    // Drift by 40% of a patch width: many particles cross patch (and some
    // cross partition) boundaries.
    const auto local =
        drifted_particles(comm.rank(), decomp, kPerRank, 0.1);
    const WriteStats s = write_dataset(comm, decomp, local, cfg);
    std::lock_guard lk(mu);
    job = WriteStats::max_over(job, s);
  });
  EXPECT_FALSE(job.used_aligned_fast_path);  // spill forces binning

  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.metadata().total_particles, kRanks * kPerRank);
  // Every particle is in the file whose bounds contain it.
  for (int fi = 0; fi < ds.file_count(); ++fi) {
    const auto& rec = ds.metadata().files[static_cast<std::size_t>(fi)];
    const ParticleBuffer fb = ds.read_data_file(fi);
    for (std::size_t i = 0; i < fb.size(); ++i)
      ASSERT_TRUE(rec.bounds.contains_closed(fb.position(i)));
  }
  // Nothing lost.
  EXPECT_EQ(id_set(ds.query_box(decomp.domain())).size(), kRanks * kPerRank);
}

TEST(SpilledParticles, LargeDriftAcrossManyPartitions) {
  constexpr int kRanks = 8;
  const PatchDecomposition decomp(Box3::unit(), {8, 1, 1});
  TempDir dir("spio-spill");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 1, 1};  // 4 partitions along x
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    // Half-domain drift: particles land two partitions away.
    const auto local = drifted_particles(comm.rank(), decomp, 100, 0.5);
    write_dataset(comm, decomp, local, cfg);
  });
  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.metadata().total_particles, 800u);
  EXPECT_EQ(id_set(ds.query_box(decomp.domain())).size(), 800u);
}

TEST(SpilledParticles, OnlyOneRankSpills) {
  // A single straying rank must flip the whole job onto the extent-based
  // plan without deadlock (the decision is collective).
  constexpr int kRanks = 8;
  const PatchDecomposition decomp(Box3::unit(), {2, 2, 2});
  TempDir dir("spio-spill");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 100,
        stream_seed(5, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 100);
    if (comm.rank() == 3) {
      // Teleport one particle to the far corner.
      local.set_position(0, Vec3d{0.99, 0.99, 0.99});
    }
    write_dataset(comm, decomp, local, cfg);
  });
  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(id_set(ds.query_box(decomp.domain())).size(), 800u);
}

}  // namespace
}  // namespace spio
