#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "simmpi/reduce_ops.hpp"
#include "simmpi/runtime.hpp"

namespace simmpi {
namespace {

TEST(Collectives, BarrierSynchronizes) {
  constexpr int kRanks = 8;
  std::atomic<int> before{0}, after{0};
  run(kRanks, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Every rank must have incremented `before` before any rank passes.
    EXPECT_EQ(before.load(), kRanks);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), kRanks);
}

TEST(Collectives, ManyBarriersBackToBack) {
  run(4, [](Comm& comm) {
    for (int i = 0; i < 200; ++i) comm.barrier();
  });
}

TEST(Collectives, BcastFromEveryRoot) {
  constexpr int kRanks = 5;
  run(kRanks, [](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      const double v =
          comm.bcast(comm.rank() == root ? root * 1.5 : -1.0, root);
      EXPECT_EQ(v, root * 1.5);
    }
  });
}

TEST(Collectives, GatherCollectsInRankOrderAtRootOnly) {
  constexpr int kRanks = 6;
  run(kRanks, [](Comm& comm) {
    const auto at2 = comm.gather(comm.rank() * 7, /*root=*/2);
    if (comm.rank() == 2) {
      ASSERT_EQ(at2.size(), static_cast<std::size_t>(kRanks));
      for (int r = 0; r < kRanks; ++r) EXPECT_EQ(at2[r], r * 7);
    } else {
      EXPECT_TRUE(at2.empty());
    }
  });
}

TEST(Collectives, AllgatherGivesEveryRankTheTable) {
  constexpr int kRanks = 7;
  run(kRanks, [](Comm& comm) {
    const auto all = comm.allgather(100 + comm.rank());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) EXPECT_EQ(all[r], 100 + r);
  });
}

TEST(Collectives, AllgathervVariableLengths) {
  constexpr int kRanks = 5;
  run(kRanks, [](Comm& comm) {
    // Rank r contributes r elements [r, r, ...].
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    const auto all = comm.allgatherv<int>(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      ASSERT_EQ(all[r].size(), static_cast<std::size_t>(r));
      for (int v : all[r]) EXPECT_EQ(v, r);
    }
  });
}

TEST(Collectives, AllreduceSum) {
  constexpr int kRanks = 9;
  run(kRanks, [](Comm& comm) {
    const int total = comm.allreduce(comm.rank() + 1, op::sum);
    EXPECT_EQ(total, kRanks * (kRanks + 1) / 2);
  });
}

TEST(Collectives, AllreduceMinMax) {
  run(6, [](Comm& comm) {
    EXPECT_EQ(comm.allreduce(comm.rank(), op::min), 0);
    EXPECT_EQ(comm.allreduce(comm.rank(), op::max), comm.size() - 1);
  });
}

TEST(Collectives, AllreduceLogical) {
  run(4, [](Comm& comm) {
    EXPECT_TRUE(comm.allreduce(comm.rank() == 2, op::logical_or));
    EXPECT_FALSE(comm.allreduce(comm.rank() == 2, op::logical_and));
  });
}

TEST(Collectives, AllreduceCustomLambda) {
  run(4, [](Comm& comm) {
    // Deterministic left fold over rank order: ((0*10+1)*10+2)*10+3 style.
    const long long v = comm.allreduce<long long>(
        comm.rank(), [](long long a, long long b) { return a * 10 + b; });
    EXPECT_EQ(v, 123);  // 0,1,2,3 folded left-to-right
  });
}

TEST(Collectives, ReduceDeliversToRootOnly) {
  run(5, [](Comm& comm) {
    const int v = comm.reduce(comm.rank() + 1, op::sum, /*root=*/3);
    if (comm.rank() == 3) {
      EXPECT_EQ(v, 15);
    } else {
      EXPECT_EQ(v, 0);  // value-initialized elsewhere
    }
  });
}

TEST(Collectives, ExscanPrefixSums) {
  constexpr int kRanks = 8;
  run(kRanks, [](Comm& comm) {
    const int prefix = comm.exscan(comm.rank() + 1, op::sum, 0);
    // Rank r gets sum over ranks [0, r) of (rank+1).
    EXPECT_EQ(prefix, comm.rank() * (comm.rank() + 1) / 2);
  });
}

TEST(Collectives, GathervCollectsVariableLengthsAtRoot) {
  constexpr int kRanks = 5;
  run(kRanks, [](Comm& comm) {
    std::vector<double> mine(static_cast<std::size_t>(comm.rank() % 3),
                             comm.rank() * 1.5);
    const auto at3 = comm.gatherv<double>(mine, /*root=*/3);
    if (comm.rank() == 3) {
      ASSERT_EQ(at3.size(), static_cast<std::size_t>(kRanks));
      for (int r = 0; r < kRanks; ++r) {
        ASSERT_EQ(at3[r].size(), static_cast<std::size_t>(r % 3));
        for (double v : at3[r]) EXPECT_EQ(v, r * 1.5);
      }
    } else {
      EXPECT_TRUE(at3.empty());
    }
  });
}

TEST(Collectives, InclusiveScan) {
  constexpr int kRanks = 7;
  run(kRanks, [](Comm& comm) {
    const int prefix = comm.scan(comm.rank() + 1, op::sum);
    // Rank r gets sum over ranks [0, r] of (rank + 1).
    EXPECT_EQ(prefix, (comm.rank() + 1) * (comm.rank() + 2) / 2);
    EXPECT_EQ(comm.scan(comm.rank(), op::max), comm.rank());
  });
}

TEST(Collectives, ScanAndExscanRelate) {
  run(6, [](Comm& comm) {
    const int inclusive = comm.scan(comm.rank() * 2, op::sum);
    const int exclusive = comm.exscan(comm.rank() * 2, op::sum, 0);
    EXPECT_EQ(inclusive, exclusive + comm.rank() * 2);
  });
}

TEST(Collectives, AlltoallvPersonalizedExchange) {
  constexpr int kRanks = 6;
  run(kRanks, [](Comm& comm) {
    // Rank s sends to rank d a vector of (d - s) mod n elements with value
    // s * 100 + d.
    std::vector<std::vector<int>> send_to(kRanks);
    for (int d = 0; d < kRanks; ++d) {
      const int len = (d - comm.rank() + kRanks) % kRanks;
      send_to[d].assign(static_cast<std::size_t>(len),
                        comm.rank() * 100 + d);
    }
    const auto recv_from = comm.alltoallv(send_to);
    ASSERT_EQ(recv_from.size(), static_cast<std::size_t>(kRanks));
    for (int s = 0; s < kRanks; ++s) {
      const int len = (comm.rank() - s + kRanks) % kRanks;
      ASSERT_EQ(recv_from[s].size(), static_cast<std::size_t>(len));
      for (int v : recv_from[s]) EXPECT_EQ(v, s * 100 + comm.rank());
    }
  });
}

TEST(Collectives, AlltoallvAllEmpty) {
  run(4, [](Comm& comm) {
    std::vector<std::vector<double>> send_to(4);
    const auto recv_from = comm.alltoallv(send_to);
    for (const auto& v : recv_from) EXPECT_TRUE(v.empty());
  });
}

TEST(Collectives, MixedCollectivesAndP2pInterleave) {
  run(4, [](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const int total = comm.allreduce(1, op::sum);
      EXPECT_EQ(total, comm.size());
      if (comm.rank() == 0) {
        comm.send_value<int>(1, iter, iter);
      } else if (comm.rank() == 1) {
        EXPECT_EQ(comm.recv_value<int>(0, iter), iter);
      }
      comm.barrier();
    }
  });
}

TEST(Collectives, SingleRankDegenerateCases) {
  run(1, [](Comm& comm) {
    comm.barrier();
    EXPECT_EQ(comm.bcast(5, 0), 5);
    EXPECT_EQ(comm.allreduce(3, op::sum), 3);
    EXPECT_EQ(comm.exscan(3, op::sum, 0), 0);
    const auto all = comm.allgather(9);
    EXPECT_EQ(all, std::vector<int>{9});
  });
}

TEST(Collectives, TrivialStructPayload) {
  struct Extent {
    double lo, hi;
    long long count;
  };
  run(3, [](Comm& comm) {
    Extent mine{comm.rank() * 1.0, comm.rank() + 1.0, comm.rank() * 10};
    const auto all = comm.allgather(mine);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(all[r].lo, r * 1.0);
      EXPECT_EQ(all[r].hi, r + 1.0);
      EXPECT_EQ(all[r].count, r * 10);
    }
  });
}

TEST(Collectives, LargeRankCount) {
  constexpr int kRanks = 128;
  run(kRanks, [](Comm& comm) {
    const long long total =
        comm.allreduce<long long>(comm.rank(), op::sum);
    EXPECT_EQ(total, static_cast<long long>(kRanks) * (kRanks - 1) / 2);
  });
}

}  // namespace
}  // namespace simmpi
