#pragma once

/// \file spatial_partition.hpp
/// Abstraction over the spatial partitionings that drive aggregation: a
/// set of disjoint axis-aligned boxes covering (a region of) the domain,
/// with point location. Implemented by the rectilinear `AggregationGrid`
/// (paper §3.1) and by the density-refined `KdPartitioning` (the §7
/// future-work extension: "creating an adaptive grid on the fly, which
/// can re-balance the grid partition size and placement based on the
/// particle distribution").

#include "util/box.hpp"

namespace spio {

class SpatialPartitioning {
 public:
  virtual ~SpatialPartitioning() = default;

  /// Number of partitions (= potential output files).
  virtual int partition_count() const = 0;

  /// Index of the partition containing `p`; points outside the covered
  /// region are clamped to the nearest partition.
  virtual int partition_of_point(const Vec3d& p) const = 0;

  /// Axis-aligned box of partition `idx`.
  virtual Box3 partition_box(int idx) const = 0;

  /// Overall region covered by the partitioning.
  virtual Box3 region() const = 0;
};

}  // namespace spio
