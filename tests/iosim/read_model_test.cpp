#include "iosim/read_model.hpp"

#include <gtest/gtest.h>

namespace spio::iosim {
namespace {

ReadCase fig7_case(int readers, ReadMode mode, std::int64_t files = 8192) {
  ReadCase c;
  c.files = files;
  c.total_bytes = (1ull << 31) * 124;  // the paper's 2-billion-particle set
  c.readers = readers;
  c.mode = mode;
  return c;
}

TEST(ReadModel, WithMetadataStrongScales) {
  // Fig. 7: the red line (with metadata) drops as readers increase.
  for (const auto& m :
       {MachineProfile::theta(), MachineProfile::ssd_workstation()}) {
    double prev = 1e30;
    for (int n : {1, 4, 16, 64}) {
      const double t = model_read_seconds(m, fig7_case(n, ReadMode::kWithMetadata));
      EXPECT_LT(t, prev) << m.name << " n=" << n;
      prev = t;
    }
  }
}

TEST(ReadModel, WithoutMetadataDoesNotScale) {
  // Fig. 7: the green line stays flat or worsens with more readers.
  const auto theta = MachineProfile::theta();
  const double t64 =
      model_read_seconds(theta, fig7_case(64, ReadMode::kWithoutMetadata));
  const double t2048 =
      model_read_seconds(theta, fig7_case(2048, ReadMode::kWithoutMetadata));
  EXPECT_GE(t2048, t64);
  // And it is far slower than the metadata-guided read.
  EXPECT_GT(t64, 10 * model_read_seconds(
                          theta, fig7_case(64, ReadMode::kWithMetadata)));
}

TEST(ReadModel, FppFileCountHurtsThetaMoreThanSsd) {
  // Fig. 7: reading the 64K-file (1,1,1) dataset vs the 8K-file (2,2,2)
  // dataset: large file counts penalize Theta (expensive opens) but are
  // nearly free on the SSD workstation.
  const auto theta = MachineProfile::theta();
  const double theta_8k =
      model_read_seconds(theta, fig7_case(64, ReadMode::kWithMetadata, 8192));
  const double theta_64k =
      model_read_seconds(theta, fig7_case(64, ReadMode::kWithMetadata, 65536));
  EXPECT_GT(theta_64k, 1.3 * theta_8k);

  const auto ssd = MachineProfile::ssd_workstation();
  const double ssd_8k =
      model_read_seconds(ssd, fig7_case(16, ReadMode::kWithMetadata, 8192));
  const double ssd_64k =
      model_read_seconds(ssd, fig7_case(16, ReadMode::kWithMetadata, 65536));
  EXPECT_LT(ssd_64k, 1.05 * ssd_8k);
}

TEST(ReadModel, FppStillScalesWhenMetadataPresent) {
  // Fig. 7's third case: despite 64K files, spatial metadata still gives
  // strong scaling (time drops with readers).
  const auto theta = MachineProfile::theta();
  const double t64 =
      model_read_seconds(theta, fig7_case(64, ReadMode::kWithMetadata, 65536));
  const double t2048 = model_read_seconds(
      theta, fig7_case(2048, ReadMode::kWithMetadata, 65536));
  EXPECT_LT(t2048, t64 / 4);
}

LodReadCase fig8_case(int levels, std::int64_t files = 8192) {
  LodReadCase c;
  c.files = files;
  c.total_particles = 1ull << 31;
  c.readers = 64;
  c.lod = {32, 2.0};
  c.levels = levels;
  return c;
}

TEST(LodReadModel, MonotonicInLevels) {
  for (const auto& m :
       {MachineProfile::theta(), MachineProfile::ssd_workstation()}) {
    double prev = 0;
    for (int l = 1; l <= 21; ++l) {
      const double t = model_lod_read_seconds(m, fig8_case(l));
      EXPECT_GE(t, prev) << m.name << " levels=" << l;
      prev = t;
    }
  }
}

TEST(LodReadModel, ThetaFlatAtLowLevelsThenProportional) {
  // Fig. 8 (Theta): "the first few levels can be read in about the same
  // time" (file opens dominate), then time grows with particle count.
  const auto theta = MachineProfile::theta();
  const double l1 = model_lod_read_seconds(theta, fig8_case(1));
  const double l6 = model_lod_read_seconds(theta, fig8_case(6));
  EXPECT_LT(l6, 1.3 * l1);  // flat region
  const double l18 = model_lod_read_seconds(theta, fig8_case(18));
  const double l21 = model_lod_read_seconds(theta, fig8_case(21));
  EXPECT_GT(l21, 4 * l18 / 3);  // proportional region: 8x data per 3 levels
  EXPECT_GT(l21, 3 * l1);
}

TEST(LodReadModel, SsdProportionalFromTheStart) {
  // Fig. 8 (workstation): opens are cheap, so time tracks bytes from the
  // first levels.
  const auto ssd = MachineProfile::ssd_workstation();
  const double l10 = model_lod_read_seconds(ssd, fig8_case(10));
  const double l13 = model_lod_read_seconds(ssd, fig8_case(13));
  EXPECT_GT(l13, 3 * l10);  // 3 more levels = ~8x the bytes
}

TEST(LodReadModel, AllLevelsMatchesFullRead) {
  // Reading every level equals the full-dataset visualization read of
  // Fig. 7 (same files, same bytes).
  const auto theta = MachineProfile::theta();
  const double lod_all = model_lod_read_seconds(theta, fig8_case(21));
  const double full =
      model_read_seconds(theta, fig7_case(64, ReadMode::kWithMetadata));
  EXPECT_NEAR(lod_all, full, full * 0.01);
}

TEST(ReadModel, RejectsInvalidCases) {
  ReadCase c;
  c.files = 0;
  EXPECT_THROW(model_read_seconds(MachineProfile::theta(), c), ConfigError);
  LodReadCase lc;
  lc.levels = -1;
  EXPECT_THROW(model_lod_read_seconds(MachineProfile::theta(), lc),
               ConfigError);
}

}  // namespace
}  // namespace spio::iosim
