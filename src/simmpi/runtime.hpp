#pragma once

/// \file runtime.hpp
/// Job launcher: runs an SPMD function on N ranks, each on its own thread.

#include <functional>
#include <vector>

#include "simmpi/comm.hpp"

namespace simmpi {

/// Optional knobs for a job launch.
struct RunOptions {
  /// Transport interposition (fault injection). Not owned; must outlive
  /// the `run` call. Null means the zero-overhead production path.
  CommHooks* comm_hooks = nullptr;
};

/// Launches rank threads and propagates failures.
///
/// Usage:
///   simmpi::run(16, [&](simmpi::Comm& comm) { ... SPMD code ... });
///
/// If any rank throws, the job is aborted: the abort flag is raised, ranks
/// blocked in receives or collectives unwind with `Aborted`, all threads
/// are joined, and the first original exception is rethrown to the caller.
void run(int nranks, const std::function<void(Comm&)>& rank_main);

/// As `run`, with launch options (e.g. installed `CommHooks`).
void run(int nranks, const RunOptions& options,
         const std::function<void(Comm&)>& rank_main);

/// As `run`, but collects a per-rank result, indexed by rank.
template <typename T>
std::vector<T> run_collect(int nranks,
                           const std::function<T(Comm&)>& rank_main) {
  std::vector<T> results(static_cast<std::size_t>(nranks));
  run(nranks, [&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] = rank_main(comm);
  });
  return results;
}

}  // namespace simmpi
