
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/checked_io.cpp" "src/faultsim/CMakeFiles/spio_faultsim.dir/checked_io.cpp.o" "gcc" "src/faultsim/CMakeFiles/spio_faultsim.dir/checked_io.cpp.o.d"
  "/root/repo/src/faultsim/fault_plan.cpp" "src/faultsim/CMakeFiles/spio_faultsim.dir/fault_plan.cpp.o" "gcc" "src/faultsim/CMakeFiles/spio_faultsim.dir/fault_plan.cpp.o.d"
  "/root/repo/src/faultsim/reliable.cpp" "src/faultsim/CMakeFiles/spio_faultsim.dir/reliable.cpp.o" "gcc" "src/faultsim/CMakeFiles/spio_faultsim.dir/reliable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spio_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spio_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
