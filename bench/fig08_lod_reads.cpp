/// \file fig08_lod_reads.cpp
/// Figure 8: progressive level-of-detail reads with 64 readers from the
/// 2-billion-particle dataset (written at 64K ranks, (2,2,2), P=32, S=2 —
/// up to level index 20). Part 1 models Theta and the SSD workstation;
/// part 2 reads progressively more levels of a real local dataset and
/// reports measured bytes and wall time per level.

#include <atomic>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "iosim/read_model.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;
using namespace spio::iosim;

namespace {

void model_panel(const MachineProfile& m) {
  const LodParams lod{32, 2.0};
  const std::uint64_t total = 1ull << 31;
  const int max_levels = lod_level_count(lod, 64, total);
  Table t("Figure 8 (model): " + m.name +
              " — 64 readers, time to read the first L levels (s)",
          {"levels", "particles", "time (s)"});
  for (int l = 1; l <= max_levels; ++l) {
    LodReadCase c;
    c.levels = l;
    t.row()
        .add_int(l)
        .add_sci(static_cast<double>(lod_cumulative(lod, 64, l, total)), 4)
        .add_double(model_lod_read_seconds(m, c), 2);
  }
  t.print(std::cout);
  std::cout << '\n';
}

void functional_panel() {
  constexpr int kWriters = 32;
  constexpr std::uint64_t kPerRank = 8192;  // 262,144 particles total
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 2});
  TempDir dir("fig08");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 2};
  cfg.lod = {32, 2.0};
  simmpi::run(kWriters, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        stream_seed(8, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir.path());
  constexpr int kReaders = 4;
  const int max_levels = ds.level_count(kReaders);
  Table t("Figure 8 (functional, this machine): " +
              std::to_string(ds.metadata().total_particles) +
              " particles, 4 readers, progressive levels",
          {"levels", "particles read", "MB read", "wall (ms)"});
  for (int l = 1; l <= max_levels; ++l) {
    std::atomic<std::uint64_t> particles{0}, bytes{0};
    const auto t0 = std::chrono::steady_clock::now();
    simmpi::run(kReaders, [&](simmpi::Comm& comm) {
      const Dataset local_ds = Dataset::open(dir.path());
      ReadStats rs;
      // Each reader takes an interleaved share of the files.
      for (int fi = comm.rank(); fi < local_ds.file_count();
           fi += comm.size()) {
        local_ds.read_data_file(fi, l, kReaders, &rs);
      }
      particles += rs.particles_returned;
      bytes += rs.bytes_read;
    });
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    t.row()
        .add_int(l)
        .add_int(static_cast<long long>(particles.load()))
        .add_double(static_cast<double>(bytes.load()) / 1e6, 2)
        .add_double(ms, 2);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  spio::bench::init_observability();
  model_panel(MachineProfile::theta());
  model_panel(MachineProfile::ssd_workstation());
  functional_panel();
  std::cout << "paper reference: on Theta the first ~8 levels cost about "
               "the same (opens dominate),\nthen time grows with particle "
               "count; on the SSD workstation time is proportional\nfrom "
               "the start and low levels load fast enough for interactive "
               "use.\n";
  return 0;
}
