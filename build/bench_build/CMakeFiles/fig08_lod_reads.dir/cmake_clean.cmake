file(REMOVE_RECURSE
  "../bench/fig08_lod_reads"
  "../bench/fig08_lod_reads.pdb"
  "CMakeFiles/fig08_lod_reads.dir/fig08_lod_reads.cpp.o"
  "CMakeFiles/fig08_lod_reads.dir/fig08_lod_reads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lod_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
