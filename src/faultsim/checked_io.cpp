#include "faultsim/checked_io.hpp"

#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/checksum.hpp"
#include "util/serialize.hpp"

namespace spio::faultsim {

std::uint64_t checked_write_file(const std::filesystem::path& path,
                                 std::span<const std::byte> data,
                                 FaultInjector* injector, int rank,
                                 const CheckedIoPolicy& policy) {
  SPIO_EXPECTS(policy.max_attempts > 0);
  // On the fault-free path the CRC is computed *during* the data write
  // (one pass over the buffer); fault paths pre-compute it because they
  // write something other than `data`.
  std::uint64_t want = 0;
  bool have_want = false;
  if (obs::enabled())
    obs::MetricsRegistry::global().counter("faultsim.checked_writes").add(1);

  for (int attempt = 1;; ++attempt) {
    if (attempt > 1) {
      if (obs::enabled())
        obs::MetricsRegistry::global().counter("faultsim.rewrites").add(1);
      obs::log::Event(obs::log::Level::kWarn, "faultsim.rewrite")
          .kv("rank", rank)
          .kv("file", path.filename().string())
          .kv("attempt", attempt);
    }
    const FileFaultKind fault =
        injector ? injector->next_file_fault(rank, path.filename().string())
                 : FileFaultKind::kNone;

    bool flush_failed = false;
    switch (fault) {
      case FileFaultKind::kTornWrite: {
        // Only a prefix reaches the disk (crash or full device mid-write).
        if (!have_want) {
          want = crc64(data);
          have_want = true;
        }
        write_file(path, data.subspan(0, data.size() / 2));
        break;
      }
      case FileFaultKind::kCorruptByte: {
        if (!have_want) {
          want = crc64(data);
          have_want = true;
        }
        std::vector<std::byte> bad(data.begin(), data.end());
        if (!bad.empty()) bad[bad.size() / 3] ^= std::byte{0x40};
        write_file(path, bad);
        break;
      }
      case FileFaultKind::kFailedSync: {
        // The data reached the page cache but the flush failed; the
        // on-disk state is untrustworthy, so the attempt must not count
        // as durable even though a read-back could succeed.
        want = crc64_write_file(path, data);
        have_want = true;
        flush_failed = true;
        break;
      }
      case FileFaultKind::kNone:
      case FileFaultKind::kBitRot: {
        want = crc64_write_file(path, data);
        have_want = true;
        break;
      }
    }

    // Read back and revalidate; a torn or corrupted write is caught here
    // and rewritten, up to the budget. The read-back streams through a
    // fixed-size chunk buffer instead of materializing the whole file.
    bool valid = !flush_failed;
    if (valid) {
      valid = crc64_file(path) == want;
    }
    if (valid) {
      if (fault == FileFaultKind::kBitRot) {
        // Corrupt *after* validation passed: silent on the write path by
        // construction; only reader-side checksums can detect it.
        std::vector<std::byte> rotted = read_file(path);
        if (!rotted.empty()) rotted[rotted.size() / 2] ^= std::byte{0x01};
        write_file(path, rotted);
      }
      return want;
    }

    if (attempt >= policy.max_attempts) {
      obs::flight_record(obs::FlightType::kMark, "checked_write_exhausted",
                         static_cast<std::uint64_t>(attempt));
      obs::log::Event(obs::log::Level::kError, "faultsim.checked_write_failed")
          .kv("rank", rank)
          .kv("file", path.filename().string())
          .kv("attempts", attempt);
    }
    SPIO_CHECK(attempt < policy.max_attempts, FaultError,
               "rank " << rank << " could not produce a valid copy of '"
                       << path.string() << "' after " << attempt
                       << " write attempts");
  }
}

}  // namespace spio::faultsim
