#pragma once

/// \file query_service.hpp
/// The concurrent query front end (docs/PERF.md "Query service"): many
/// clients, one process-wide ReadEngine underneath.
///
/// A `QueryService` is a bounded admission queue feeding a fixed worker
/// pool. Clients `submit` a query function (anything returning a
/// `ParticleBuffer` — typically a lambda over `Dataset::query_box`) and
/// get a future for a shared, immutable result. The service adds what
/// the bare engine cannot:
///
///   - **Bounded admission** — at most `queue_depth` queries wait
///     (`SPIO_SERVE_QUEUE`, default 256). A full queue rejects new work
///     with `RejectedError` instead of letting latency grow without
///     bound; accepted work is never dropped, even across `shutdown`.
///   - **Per-query deadlines** — a query past `Options::deadline` aborts
///     at the next per-file fetch boundary (or before it starts, if it
///     expired while queued) with `TimeoutError`. Shared state — the
///     prefix cache, the single-flight table, the admission queue — is
///     never corrupted by an expired query; the torture suite
///     (tests/core/query_service_test.cpp) hammers exactly this.
///   - **Query coalescing** — callers that tag a query with a
///     `coalesce_key` (same key ⟺ same query against the same dataset)
///     join an identical queued/executing query instead of enqueueing a
///     duplicate: one execution, every waiter shares the one result
///     buffer. This is single-flight one level above the engine's
///     per-prefix dedup, and under a hot-spot (Zipfian) multi-client
///     load it is where most of the throughput comes from.
///   - **Drain-on-shutdown** — `shutdown()` stops admission, finishes
///     everything accepted (`ThreadPool::drain_and_stop`), and resolves
///     every outstanding future.
///
/// Results are `std::shared_ptr<const ParticleBuffer>`: immutable and
/// shared between coalesced waiters without a copy. Byte-identity with
/// the serial oracle is unchanged — the service runs the exact same
/// query functions, it only schedules them.
///
/// Instrumentation (when observability is on): `service.queue_depth`
/// (gauge), `service.rejected`, `service.deadline_expired`,
/// `service.coalesced`, `service.completed`, `service.failed`
/// (counters), plus a `serve.query` span per executed query. The
/// engine-level `service.singleflight_{leader,follower}` counters fire
/// underneath whenever concurrent queries race on a cold prefix.
///
/// Thread safety: `submit`/`run`/`stats` may be called from any thread.
/// `shutdown` may be called concurrently with submitters (they get
/// `RejectedError`) but not from inside a query function.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_pool.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

/// Construction-time knobs; zero/empty fields fall back to the
/// environment (`SPIO_SERVE_THREADS`, `SPIO_SERVE_QUEUE`) and then to
/// built-in defaults.
struct ServiceConfig {
  int workers = 0;      ///< worker threads; default min(hw, 16), >= 2
  int queue_depth = 0;  ///< max queued (not yet executing) queries; 256
  /// When set, the first non-timeout query failure dumps a postmortem
  /// bundle (`obs::save_postmortem`) into this directory — once per
  /// service, like the write path's on-failure bundles.
  std::filesystem::path postmortem_dir;
};

/// Per-query options (re-exported as `QueryService::Options`).
struct QueryOptions {
  /// Absolute expiry; default (epoch) = no deadline. Coalesced
  /// followers inherit the leader's deadline.
  std::chrono::steady_clock::time_point deadline{};
  /// Non-empty: queries with equal keys are interchangeable and may
  /// share one execution and one result.
  std::string coalesce_key;
};

/// Point-in-time service counters.
struct ServiceStats {
  std::uint64_t accepted = 0;    ///< submits admitted (incl. coalesced)
  std::uint64_t rejected = 0;    ///< submits refused (queue full / stopped)
  std::uint64_t coalesced = 0;   ///< submits that joined an identical query
  std::uint64_t completed = 0;   ///< client queries resolved with a result
  std::uint64_t failed = 0;      ///< executions failed (excl. timeouts)
  std::uint64_t deadline_expired = 0;  ///< executions aborted by deadline
  std::uint64_t queue_depth = 0;       ///< currently queued
  std::uint64_t inflight = 0;          ///< currently executing
  /// Completed queries whose admission→completion latency exceeded the
  /// `SPIO_SLO_MS` budget (0 when the budget is unset).
  std::uint64_t slo_violations = 0;
};

class QueryService {
 public:
  using Clock = std::chrono::steady_clock;
  /// Shared immutable query result (coalesced waiters share one).
  using Result = std::shared_ptr<const ParticleBuffer>;
  /// A query: runs on a service worker, returns the result buffer.
  /// Throws `spio::Error` subclasses on failure.
  using QueryFn = std::function<ParticleBuffer()>;

  using Options = QueryOptions;

  /// The process-wide service (thread-safe magic static), configured
  /// from the environment on first use.
  static QueryService& instance();

  explicit QueryService(const ServiceConfig& cfg = {});
  /// Drains and joins (see `shutdown`).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admit `fn`. Throws `RejectedError` immediately when the queue is
  /// full or the service is shut down; otherwise the returned future
  /// resolves to the shared result, or to the query's `TimeoutError` /
  /// I/O error.
  std::future<Result> submit(QueryFn fn, Options opt = {});

  /// `submit` + wait: the closed-loop client call.
  Result run(QueryFn fn, Options opt = {});

  /// Stop admission (further submits are rejected), execute everything
  /// already accepted, resolve every future, join the workers.
  /// Idempotent.
  void shutdown();

  ServiceStats stats() const;
  int workers() const { return workers_; }
  int queue_depth() const { return depth_; }

 private:
  /// One admitted query; coalesced waiters append their promises.
  struct Job {
    /// Process-unique request ID (obs::next_query_id), assigned at
    /// admission; coalesced waiters share the leader's ID. Installed
    /// thread-locally around execution so every span/log/flight record
    /// of this query carries it.
    std::uint64_t id = 0;
    Clock::time_point admitted_at{};  ///< for queue-wait / latency telemetry
    QueryFn fn;
    Options opt;
    std::vector<std::promise<Result>> waiters;
    bool done = false;  // guarded by mu_: no more waiters may attach
  };

  /// Pop + execute the front job (runs on a pool worker; one call per
  /// admitted job).
  void drain_one();
  void note_failure(const std::string& what);

  int workers_ = 0;
  int depth_ = 0;
  std::filesystem::path postmortem_dir_;

  mutable std::mutex mu_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Job>> by_key_;
  bool stopping_ = false;
  bool postmortem_saved_ = false;
  std::uint64_t inflight_ = 0;
  ServiceStats tallies_;  // accepted/rejected/... (queue_depth derived)
  /// Outside mu_: bumped on the worker's telemetry path, read by stats().
  std::atomic<std::uint64_t> slo_violations_{0};

  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace spio
