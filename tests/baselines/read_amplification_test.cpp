#include <gtest/gtest.h>

#include "baselines/fpp.hpp"
#include "baselines/rank_order.hpp"
#include "baselines/shared_file.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// The paper's core read-side claim, verified functionally: the same data
/// written by (a) our spatially-aware format, (b) rank-order two-phase
/// aggregation, (c) file-per-process and (d) a single shared file, then
/// queried with the same spatial box. Our format must touch the fewest
/// files and scan the fewest particles (Fig. 1, §4).
class ReadAmplification : public ::testing::Test {
 protected:
  static constexpr int kRanks = 16;
  static constexpr std::uint64_t kPerRank = 200;
  // 4x4x1 process grid over the unit cube.
  static const PatchDecomposition& decomp() {
    static const PatchDecomposition d(Box3::unit(), {4, 4, 1});
    return d;
  }

  static ParticleBuffer particles(int rank) {
    return workload::uniform(
        Schema::uintah(), decomp().patch(rank), kPerRank,
        stream_seed(31, static_cast<std::uint64_t>(rank)),
        static_cast<std::uint64_t>(rank) * kPerRank);
  }

  static void SetUpTestSuite() {
    dirs_ = new TempDir[4]{TempDir("ra-spio"), TempDir("ra-rankorder"),
                           TempDir("ra-fpp"), TempDir("ra-shared")};
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const ParticleBuffer local = particles(comm.rank());
      WriterConfig cfg;
      cfg.dir = dirs_[0].path();
      cfg.factor = {2, 2, 1};  // 4 files, spatially grouped quadrants
      write_dataset(comm, decomp(), local, cfg);
      baselines::rank_order_write(comm, local, dirs_[1].path(),
                                  /*group_size=*/4);  // 4 files, rank order
      baselines::fpp_write(comm, local, dirs_[2].path());
      baselines::shared_write(comm, local, dirs_[3].path());
    });
  }

  static void TearDownTestSuite() {
    delete[] dirs_;
    dirs_ = nullptr;
  }

  /// A query covering one aggregation partition (the domain's left-front-
  /// bottom quarter: x in [0, 0.5), y in [0, 0.5), all z handled below).
  static Box3 query() { return Box3({0.01, 0.01, 0.01}, {0.49, 0.49, 0.99}); }

  static TempDir* dirs_;
};

TempDir* ReadAmplification::dirs_ = nullptr;

TEST_F(ReadAmplification, AllFormatsAgreeOnTheAnswer) {
  const auto idf = Schema::uintah().index_of("id");
  auto ids = [&](const ParticleBuffer& b) {
    std::set<double> s;
    for (std::size_t i = 0; i < b.size(); ++i) s.insert(b.get_f64(i, idf));
    return s;
  };
  const auto spio_ids = ids(Dataset::open(dirs_[0].path()).query_box(query()));
  EXPECT_EQ(ids(baselines::RankOrderDataset::open(dirs_[1].path())
                    .query_box(query())),
            spio_ids);
  EXPECT_EQ(ids(baselines::FppDataset::open(dirs_[2].path()).query_box(query())),
            spio_ids);
  EXPECT_EQ(
      ids(baselines::SharedDataset::open(dirs_[3].path()).query_box(query())),
      spio_ids);
  EXPECT_FALSE(spio_ids.empty());
}

TEST_F(ReadAmplification, SpioTouchesFewestFiles) {
  ReadStats spio_rs, ro_rs, fpp_rs;
  Dataset::open(dirs_[0].path()).query_box(query(), -1, 1, &spio_rs);
  baselines::RankOrderDataset::open(dirs_[1].path()).query_box(query(), &ro_rs);
  baselines::FppDataset::open(dirs_[2].path()).query_box(query(), &fpp_rs);

  // Our 4-file layout splits the domain in x and y; the query touches
  // exactly 1 of 4 files. Rank-order must read all 4; FPP all 16.
  EXPECT_EQ(spio_rs.files_opened, 1);
  EXPECT_EQ(ro_rs.files_opened, 4);
  EXPECT_EQ(fpp_rs.files_opened, 16);
}

TEST_F(ReadAmplification, SpioScansFewestParticles) {
  ReadStats spio_rs, ro_rs, fpp_rs, sh_rs;
  Dataset::open(dirs_[0].path()).query_box(query(), -1, 1, &spio_rs);
  baselines::RankOrderDataset::open(dirs_[1].path()).query_box(query(), &ro_rs);
  baselines::FppDataset::open(dirs_[2].path()).query_box(query(), &fpp_rs);
  baselines::SharedDataset::open(dirs_[3].path()).query_box(query(), &sh_rs);

  const std::uint64_t total = kRanks * kPerRank;
  EXPECT_EQ(ro_rs.particles_scanned, total);
  EXPECT_EQ(fpp_rs.particles_scanned, total);
  EXPECT_EQ(sh_rs.particles_scanned, total);
  // Ours reads only the one intersecting file (a quarter of the data).
  EXPECT_EQ(spio_rs.particles_scanned, total / 4);
  EXPECT_LT(spio_rs.bytes_read, fpp_rs.bytes_read / 3);
}

TEST_F(ReadAmplification, DistributedRenderingFileCounts) {
  // Fig. 1's 4-node rendering scenario, on our 16-rank dataset: each of 4
  // readers takes one spatial tile. With the spatial layout every reader
  // opens exactly 1 file; with rank-order grouping a tile's particles are
  // spread over several files.
  const Dataset spio = Dataset::open(dirs_[0].path());
  for (int r = 0; r < 4; ++r) {
    const Box3 tile = reader_tile(spio.metadata().domain, r, 4);
    // Shrink slightly to avoid boundary-face overlaps.
    const Box3 inner = Box3(tile.lo + tile.size() * 0.01,
                            tile.hi - tile.size() * 0.01);
    ReadStats rs;
    spio.query_box(inner, -1, 1, &rs);
    EXPECT_EQ(rs.files_opened, 1) << "reader " << r;
  }
}

}  // namespace
}  // namespace spio
