#include "workload/schema.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spio {
namespace {

TEST(Schema, UintahRecordSizeMatchesPaper) {
  // Paper §5.1: 15 doubles + 1 float per particle = 124 bytes.
  const Schema s = Schema::uintah();
  EXPECT_EQ(s.record_size(), 15 * 8 + 4u);
}

TEST(Schema, UintahFieldLayout) {
  const Schema s = Schema::uintah();
  EXPECT_EQ(s.field_count(), 6u);
  EXPECT_EQ(s.offset(s.index_of("position")), 0u);
  EXPECT_EQ(s.offset(s.index_of("stress")), 24u);
  EXPECT_EQ(s.offset(s.index_of("density")), 96u);
  EXPECT_EQ(s.offset(s.index_of("volume")), 104u);
  EXPECT_EQ(s.offset(s.index_of("id")), 112u);
  EXPECT_EQ(s.offset(s.index_of("type")), 120u);
}

TEST(Schema, PositionOnlyIs24Bytes) {
  EXPECT_EQ(Schema::position_only().record_size(), 24u);
}

TEST(Schema, RequiresPositionFirst) {
  EXPECT_THROW(Schema({{"density", FieldType::kF64, 1}}), ConfigError);
  EXPECT_THROW(Schema({{"position", FieldType::kF32, 3}}), ConfigError);
  EXPECT_THROW(Schema({{"position", FieldType::kF64, 2}}), ConfigError);
}

TEST(Schema, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(Schema({}), ConfigError);
  EXPECT_THROW(Schema({{"position", FieldType::kF64, 3},
                       {"a", FieldType::kF64, 1},
                       {"a", FieldType::kF32, 1}}),
               ConfigError);
}

TEST(Schema, RejectsZeroComponents) {
  EXPECT_THROW(Schema({{"position", FieldType::kF64, 3},
                       {"bad", FieldType::kF64, 0}}),
               ConfigError);
}

TEST(Schema, IndexOfMissingFieldThrows) {
  EXPECT_THROW(Schema::uintah().index_of("pressure"), ConfigError);
}

TEST(Schema, SerializationRoundTrip) {
  const Schema s = Schema::uintah();
  BinaryWriter w;
  s.serialize(w);
  BinaryReader r(w.bytes());
  const Schema back = Schema::deserialize(r);
  EXPECT_EQ(back, s);
  EXPECT_EQ(back.record_size(), s.record_size());
  EXPECT_TRUE(r.at_end());
}

TEST(Schema, DeserializeRejectsGarbage) {
  BinaryWriter w;
  w.write<std::uint32_t>(0);  // zero fields
  {
    BinaryReader r(w.bytes());
    EXPECT_THROW(Schema::deserialize(r), FormatError);
  }
  BinaryWriter w2;
  w2.write<std::uint32_t>(1);
  w2.write_string("position");
  w2.write<std::uint8_t>(42);  // bad type tag
  w2.write<std::uint32_t>(3);
  {
    BinaryReader r(w2.bytes());
    EXPECT_THROW(Schema::deserialize(r), FormatError);
  }
}

TEST(Schema, EqualityComparesFieldLists) {
  EXPECT_EQ(Schema::uintah(), Schema::uintah());
  EXPECT_FALSE(Schema::uintah() == Schema::position_only());
}

}  // namespace
}  // namespace spio
