#include "core/journal.hpp"

#include <algorithm>
#include <string>

#include "core/metadata.hpp"
#include "core/query_plan/zone_map.hpp"
#include "obs/log.hpp"
#include "obs/postmortem.hpp"
#include "util/serialize.hpp"

namespace spio {

namespace {

void remove_if_exists(const std::filesystem::path& p) {
  std::error_code ec;
  std::filesystem::remove(p, ec);
  SPIO_CHECK(!ec, IoError,
             "cannot remove '" << p.string() << "': " << ec.message());
}

/// True when every data file promised by the metadata exists with exactly
/// the size the record implies.
bool files_intact(const std::filesystem::path& dir,
                  const DatasetMetadata& meta) {
  for (const FileRecord& rec : meta.files) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(dir / rec.file_name(), ec);
    if (ec) return false;
    if (size != rec.particle_count * meta.schema.record_size()) return false;
  }
  return true;
}

}  // namespace

void WriteJournal::begin(const std::filesystem::path& dir) {
  BinaryWriter w;
  w.write<std::uint32_t>(kMagic);
  w.write<std::uint32_t>(kVersion);
  write_file(dir / kFileName, w.bytes());
  // Only after the journal is durable may the previous commit be
  // invalidated — a crash in between must read as "incomplete", never as
  // "the old dataset is still whole". A stale postmortem bundle belongs
  // to the previous failed attempt; a fresh write restarts the
  // directory's failure history.
  remove_if_exists(dir / DatasetMetadata::kFileName);
  remove_if_exists(dir / ChecksumTable::kFileName);
  remove_if_exists(dir / ZoneMapTable::kFileName);
  remove_if_exists(dir / obs::kPostmortemFile);
}

void WriteJournal::commit(const std::filesystem::path& dir) {
  remove_if_exists(dir / kFileName);
}

bool WriteJournal::present(const std::filesystem::path& dir) {
  std::error_code ec;
  return std::filesystem::exists(dir / kFileName, ec) && !ec;
}

std::optional<std::uint64_t> ChecksumTable::crc_for(
    std::uint32_t aggregator_rank) const {
  for (const Entry& e : entries)
    if (e.aggregator_rank == aggregator_rank) return e.crc;
  return std::nullopt;
}

void ChecksumTable::save(const std::filesystem::path& dir) const {
  BinaryWriter w;
  w.write<std::uint32_t>(kMagic);
  w.write<std::uint32_t>(kVersion);
  w.write<std::uint64_t>(entries.size());
  for (const Entry& e : entries) {
    w.write<std::uint32_t>(e.aggregator_rank);
    w.write<std::uint64_t>(e.crc);
  }
  write_file(dir / kFileName, w.bytes());
}

ChecksumTable ChecksumTable::load(const std::filesystem::path& dir) {
  const auto bytes = read_file(dir / kFileName);
  BinaryReader r(bytes);
  SPIO_CHECK(r.read<std::uint32_t>() == kMagic, FormatError,
             "not a spio checksum table (bad magic)");
  const auto version = r.read<std::uint32_t>();
  SPIO_CHECK(version == kVersion, FormatError,
             "unsupported checksum table version " << version);
  const auto count = r.read<std::uint64_t>();
  ChecksumTable table;
  table.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    e.aggregator_rank = r.read<std::uint32_t>();
    e.crc = r.read<std::uint64_t>();
    table.entries.push_back(e);
  }
  SPIO_CHECK(r.remaining() == 0, FormatError,
             "checksum table holds " << r.remaining()
                                     << " trailing bytes after "
                                     << count << " entries");
  return table;
}

bool ChecksumTable::present(const std::filesystem::path& dir) {
  std::error_code ec;
  return std::filesystem::exists(dir / kFileName, ec) && !ec;
}

RepairOutcome check_and_repair(const std::filesystem::path& dir,
                               bool remove_partial) {
  if (!WriteJournal::present(dir)) return RepairOutcome::kClean;

  // Journal present: the dataset is complete iff the commit point was
  // reached (metadata parses) and every promised data file is intact.
  bool complete = false;
  try {
    complete = files_intact(dir, DatasetMetadata::load(dir));
  } catch (const Error&) {
    complete = false;
  }
  const auto log_outcome = [&](const char* outcome) {
    obs::log::Event(obs::log::Level::kInfo, "journal.repair")
        .kv("dir", dir.string())
        .kv("outcome", outcome);
  };
  if (complete) {
    WriteJournal::commit(dir);
    log_outcome("finalized_journal");
    return RepairOutcome::kFinalizedJournal;
  }
  if (!remove_partial) {
    // An incomplete dataset left standing should explain itself: when
    // the failing write could not dump a bundle (hard process crash),
    // lay one down now from this process's flight rings. A bundle the
    // writer already produced carries more context — keep it.
    if (!obs::postmortem_present(dir)) {
      obs::PostmortemInfo info;
      info.reason =
          "incomplete dataset detected by check_and_repair (journal "
          "present, metadata or data files missing)";
      info.phase = "repair";
      obs::save_postmortem(dir, info);
    }
    log_outcome("incomplete");
    return RepairOutcome::kIncomplete;
  }

  // Clear out every artifact the writer could have produced — the
  // postmortem bundle of the failed attempt included — leaving the
  // journal's removal for last so an interrupted repair stays detectable.
  remove_if_exists(dir / DatasetMetadata::kFileName);
  remove_if_exists(dir / ChecksumTable::kFileName);
  remove_if_exists(dir / ZoneMapTable::kFileName);
  remove_if_exists(dir / obs::kPostmortemFile);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with("File_") && name.ends_with(".bin"))
      remove_if_exists(entry.path());
  }
  SPIO_CHECK(!ec, IoError,
             "cannot scan '" << dir.string() << "': " << ec.message());
  remove_if_exists(dir / WriteJournal::kFileName);
  log_outcome("removed_partial");
  return RepairOutcome::kRemovedPartial;
}

}  // namespace spio
