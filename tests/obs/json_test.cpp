#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace spio::obs {
namespace {

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue& a = v.at("a");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(std::size_t{0}).as_i64(), 1);
  EXPECT_TRUE(a.at(std::size_t{2}).at("b").as_bool());
  EXPECT_EQ(v.at("c").at("d").as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_TRUE(v.contains("c"));
}

TEST(Json, StringEscapesRoundTrip) {
  const JsonValue v = JsonValue::parse(R"("line\nquote\"tab\tback\\")");
  EXPECT_EQ(v.as_string(), "line\nquote\"tab\tback\\");
  // Serialization re-escapes: parse(dump(x)) == x.
  EXPECT_EQ(JsonValue::parse(v.dump()).as_string(), v.as_string());
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
}

TEST(Json, LargeU64CountersSurviveRoundTrip) {
  // 2^63 + 9 is not representable as a double; the raw-token path must
  // carry it through parse -> dump -> parse without precision loss.
  const std::uint64_t big = (std::uint64_t{1} << 63) + 9;
  const JsonValue direct = JsonValue::number(big);
  EXPECT_EQ(direct.as_u64(), big);
  const JsonValue reparsed = JsonValue::parse(direct.dump());
  EXPECT_EQ(reparsed.as_u64(), big);
  const JsonValue again = JsonValue::parse(reparsed.dump());
  EXPECT_EQ(again.as_u64(), big);
}

TEST(Json, BuildsDocumentsProgrammatically) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue::string("spio"));
  doc.set("count", JsonValue::number(std::uint64_t{42}));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(1));
  arr.push_back(JsonValue::boolean(false));
  doc.set("items", std::move(arr));
  doc.set("name", JsonValue::string("spio2"));  // replace, keep order

  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_EQ(back.at("name").as_string(), "spio2");
  EXPECT_EQ(back.at("count").as_u64(), 42u);
  EXPECT_EQ(back.at("items").size(), 2u);
  // Insertion order is preserved through set-replace.
  EXPECT_EQ(back.members()[0].first, "name");
}

TEST(Json, PrettyPrintReparsesToSameStructure) {
  const JsonValue v =
      JsonValue::parse(R"({"a": [1, 2], "b": {"c": null}})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const JsonValue back = JsonValue::parse(pretty);
  EXPECT_EQ(back.at("a").size(), 2u);
  EXPECT_TRUE(back.at("b").at("c").is_null());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), FormatError);
  EXPECT_THROW(JsonValue::parse("{"), FormatError);
  EXPECT_THROW(JsonValue::parse("[1,]"), FormatError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), FormatError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), FormatError);
  EXPECT_THROW(JsonValue::parse("tru"), FormatError);
  EXPECT_THROW(JsonValue::parse("1 2"), FormatError);  // trailing garbage
}

TEST(Json, TypedAccessorsRejectKindMismatch) {
  const JsonValue num = JsonValue::parse("3");
  EXPECT_THROW(num.as_string(), FormatError);
  EXPECT_THROW(num.at("x"), FormatError);
  const JsonValue obj = JsonValue::parse("{}");
  EXPECT_THROW(obj.as_double(), FormatError);
  EXPECT_THROW(obj.at("absent"), FormatError);
}

}  // namespace
}  // namespace spio::obs
