#pragma once

/// \file position_mirror.hpp
/// The SoA position mirror: three contiguous f64 arrays (x, y, z)
/// shadowing the position columns of one AoS record buffer. The 124 B
/// AoS record layout (paper §5.1) defeats vectorization of the box and
/// range predicates — each position load is a strided gather — so the
/// read path mirrors positions once per cached file prefix and lets the
/// SIMD kernels (simd/kernels.hpp) evaluate predicates over the mirror
/// at full vector width, copying matching runs from the untouched AoS
/// bytes so output stays byte-identical to the scalar kernels.
///
/// Ownership: `PrefixCache` entries hold the mirror next to the prefix
/// block. Its bytes are charged to the `SPIO_READ_CACHE` budget, it is
/// evicted with the prefix, and a staleness invalidation (in-place
/// rewrite) drops it too — a mirror can never outlive or disagree with
/// the bytes it mirrors.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

namespace spio {

class PositionMirror {
 public:
  /// Mirror the positions of `bytes` (whole AoS records of
  /// `record_size` bytes with the f64x3 position at `position_offset`).
  /// `bytes.size()` must be a multiple of `record_size`. The tail is
  /// padded to a lane-count multiple with quiet NaN, which no box
  /// predicate matches — padded lanes never select a record.
  static std::shared_ptr<const PositionMirror> build(
      std::span<const std::byte> bytes, std::size_t record_size,
      std::size_t position_offset);

  /// Mirrored record count (excluding padding).
  std::size_t size() const { return count_; }
  /// Allocated bytes — what the cache charges against its budget.
  std::uint64_t byte_size() const {
    return static_cast<std::uint64_t>(3 * padded_ * sizeof(double));
  }
  /// What `build` over `count` records will allocate (and the cache
  /// charge) — budget arithmetic for tests and admission math.
  static std::uint64_t bytes_for_count(std::size_t count);

  const double* x() const { return lanes_.get(); }
  const double* y() const { return lanes_.get() + padded_; }
  const double* z() const { return lanes_.get() + 2 * padded_; }

 private:
  PositionMirror(std::size_t count, std::size_t padded)
      : lanes_(new double[3 * padded]), count_(count), padded_(padded) {}

  std::unique_ptr<double[]> lanes_;  // [x | y | z], each `padded_` long
  std::size_t count_;
  std::size_t padded_;
};

}  // namespace spio
