#pragma once

/// \file error.hpp
/// Error handling for the library. Follows the Core Guidelines split
/// between contract violations (programming errors, `SPIO_EXPECTS`) and
/// runtime failures (I/O and format errors, exceptions derived from
/// `spio::Error`).

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace spio {

/// Base class for all runtime errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a file cannot be opened, read or written.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("spio: I/O error: " + what) {}
};

/// Raised when a metadata or data file fails validation (bad magic,
/// truncated payload, inconsistent counts, unsupported version).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what)
      : Error("spio: format error: " + what) {}
};

/// Raised when a configuration is invalid (non-positive partition factor,
/// mismatched schema, reader/writer parameter conflicts).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("spio: config error: " + what) {}
};

/// Raised when a query's deadline expires before it completes. The query
/// is abandoned at a safe point (between file fetches); shared state —
/// cache, engine pool, service queue — is never left corrupted.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what)
      : Error("spio: timeout: " + what) {}
};

/// Raised when the query service refuses new work: the bounded admission
/// queue is full, or the service has been shut down.
class RejectedError : public Error {
 public:
  explicit RejectedError(const std::string& what)
      : Error("spio: rejected: " + what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "spio: %s violation: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}
}  // namespace detail

}  // namespace spio

/// Precondition check (Core Guidelines I.6). Aborts on violation: a failed
/// precondition is a programming error, not a recoverable condition.
#define SPIO_EXPECTS(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::spio::detail::contract_failure("precondition", #cond, __FILE__,  \
                                       __LINE__);                         \
  } while (0)

/// Postcondition check (Core Guidelines I.8).
#define SPIO_ENSURES(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::spio::detail::contract_failure("postcondition", #cond, __FILE__, \
                                       __LINE__);                         \
  } while (0)

/// Throw `ExcType` with an ostream-formatted message when `cond` is false.
#define SPIO_CHECK(cond, ExcType, msg)        \
  do {                                        \
    if (!(cond)) {                            \
      std::ostringstream spio_check_oss_;     \
      spio_check_oss_ << msg;                 \
      throw ExcType(spio_check_oss_.str());   \
    }                                         \
  } while (0)
