#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/runtime.hpp"

namespace simmpi {
namespace {

TEST(P2p, SendRecvSingleValue) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 0, 42);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 0), 42);
    }
  });
}

TEST(P2p, SendRecvVector) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(100);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send<double>(1, 5, data);
    } else {
      const auto data = comm.recv<double>(0, 5);
      ASSERT_EQ(data.size(), 100u);
      EXPECT_EQ(data[37], 37.0);
    }
  });
}

TEST(P2p, EmptyPayload) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 0, {});
    } else {
      EXPECT_TRUE(comm.recv<int>(0, 0).empty());
    }
  });
}

TEST(P2p, SelfSend) {
  run(1, [](Comm& comm) {
    comm.send_value<int>(0, 3, 99);
    EXPECT_EQ(comm.recv_value<int>(0, 3), 99);
  });
}

TEST(P2p, TagsMatchIndependently) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, /*tag=*/1, 111);
      comm.send_value<int>(1, /*tag=*/2, 222);
    } else {
      // Receive in the opposite order of sending: tag matching must pick
      // the right message regardless of arrival order.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(P2p, NonOvertakingSameSourceAndTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value<int>(1, 0, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv_value<int>(0, 0), i);
    }
  });
}

TEST(P2p, AnySourceReceivesFromAll) {
  constexpr int kRanks = 8;
  run(kRanks, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(kRanks, false);
      for (int i = 1; i < kRanks; ++i) {
        int src = -2;
        const int v = comm.recv_value<int>(kAnySource, 0, &src);
        EXPECT_EQ(v, src * 10);
        EXPECT_FALSE(seen[static_cast<std::size_t>(src)]);
        seen[static_cast<std::size_t>(src)] = true;
      }
    } else {
      comm.send_value<int>(0, 0, comm.rank() * 10);
    }
  });
}

TEST(P2p, AnyTagMatchesFirstArrival) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 7, 70);
      comm.send_value<int>(1, 9, 90);
    } else {
      comm.barrier();  // ensure both messages arrived before receiving
      Message m = comm.recv_message(0, kAnyTag);
      EXPECT_EQ(m.tag, 7);  // first arrival matched first
    }
    if (comm.rank() == 0) comm.barrier();
    if (comm.rank() == 1) comm.recv_message(0, kAnyTag);  // drain
  });
}

TEST(P2p, IsendIrecvWaitAll) {
  constexpr int kRanks = 4;
  run(kRanks, [](Comm& comm) {
    // Ring exchange: send to the right, receive from the left.
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<int> out{comm.rank() * 100};
    std::vector<int> in;
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv<int>(in, left, 0));
    reqs.push_back(comm.isend<int>(right, 0, out));
    Request::wait_all(reqs);
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(in[0], left * 100);
  });
}

TEST(P2p, RequestWaitIsIdempotent) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 0, 5);
    } else {
      std::vector<int> in;
      Request r = comm.irecv<int>(in, 0, 0);
      EXPECT_FALSE(r.done());
      r.wait();
      EXPECT_TRUE(r.done());
      r.wait();  // must be a no-op
      EXPECT_EQ(in, std::vector<int>{5});
    }
  });
}

TEST(P2p, IprobeSeesPendingMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, 4, std::vector<double>{1, 2, 3});
      comm.barrier();
    } else {
      comm.barrier();  // sender has definitely delivered
      int src = -1;
      std::size_t bytes = 0;
      EXPECT_TRUE(comm.iprobe(0, 4, &src, &bytes));
      EXPECT_EQ(src, 0);
      EXPECT_EQ(bytes, 3 * sizeof(double));
      EXPECT_FALSE(comm.iprobe(0, 99));
      comm.recv<double>(0, 4);  // drain
    }
  });
}

TEST(P2p, LargePayload) {
  run(2, [](Comm& comm) {
    constexpr std::size_t kCount = 1 << 20;  // 8 MiB of doubles
    if (comm.rank() == 0) {
      std::vector<double> data(kCount, 1.5);
      data.back() = 2.5;
      comm.send<double>(1, 0, data);
    } else {
      const auto data = comm.recv<double>(0, 0);
      ASSERT_EQ(data.size(), kCount);
      EXPECT_EQ(data.front(), 1.5);
      EXPECT_EQ(data.back(), 2.5);
    }
  });
}

TEST(P2p, ManyToOneStress) {
  constexpr int kRanks = 16;
  run(kRanks, [](Comm& comm) {
    constexpr int kMsgs = 20;
    if (comm.rank() == 0) {
      long long total = 0;
      for (int i = 0; i < (kRanks - 1) * kMsgs; ++i)
        total += comm.recv_value<int>(kAnySource, 0);
      long long expect = 0;
      for (int r = 1; r < kRanks; ++r)
        for (int m = 0; m < kMsgs; ++m) expect += r * 1000 + m;
      EXPECT_EQ(total, expect);
    } else {
      for (int m = 0; m < kMsgs; ++m)
        comm.send_value<int>(0, 0, comm.rank() * 1000 + m);
    }
  });
}

TEST(P2p, RecvValueRejectsWrongCardinality) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 0, std::vector<int>{1, 2});
    } else {
      EXPECT_THROW(comm.recv_value<int>(0, 0), spio::FormatError);
    }
  });
}

}  // namespace
}  // namespace simmpi
