#include "core/density.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace spio {
namespace {

ParticleBuffer at_positions(std::initializer_list<Vec3d> points) {
  ParticleBuffer buf(Schema::position_only());
  std::size_t i = 0;
  for (const Vec3d& p : points) {
    buf.append_uninitialized();
    buf.set_position(i++, p);
  }
  return buf;
}

TEST(DensityField, BinsAndNormalizes) {
  DensityField f(Box3::unit(), {2, 1, 1});
  f.add(at_positions({{0.1, 0.5, 0.5}, {0.2, 0.5, 0.5}, {0.9, 0.5, 0.5}}));
  f.normalize();
  ASSERT_EQ(f.bin_count(), 2u);
  EXPECT_DOUBLE_EQ(f.values()[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(f.values()[1], 1.0 / 3.0);
  EXPECT_EQ(f.samples(), 3u);
}

TEST(DensityField, ClampsOutOfDomainPositions) {
  DensityField f(Box3::unit(), {2, 2, 2});
  f.add(at_positions({{-5, -5, -5}, {5, 5, 5}}));
  f.normalize();
  EXPECT_DOUBLE_EQ(f.values()[0], 0.5);          // clamped to first bin
  EXPECT_DOUBLE_EQ(f.values().back(), 0.5);      // clamped to last bin
}

TEST(DensityField, PartialCountBinsPrefixOnly) {
  DensityField f(Box3::unit(), {1, 1, 1});
  f.add(at_positions({{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}),
        /*count=*/2);
  EXPECT_EQ(f.samples(), 2u);
}

TEST(DensityField, RmseZeroForIdenticalDistributions) {
  const auto buf = workload::uniform(Schema::position_only(), Box3::unit(),
                                     500, 3);
  DensityField a(Box3::unit(), {4, 4, 4}), b(Box3::unit(), {4, 4, 4});
  a.add(buf);
  b.add(buf);
  a.normalize();
  b.normalize();
  EXPECT_DOUBLE_EQ(a.rmse_against(b), 0.0);
}

TEST(DensityField, RmseDetectsDifferentDistributions) {
  DensityField a(Box3::unit(), {2, 1, 1}), b(Box3::unit(), {2, 1, 1});
  a.add(at_positions({{0.1, 0.5, 0.5}}));
  b.add(at_positions({{0.9, 0.5, 0.5}}));
  a.normalize();
  b.normalize();
  EXPECT_DOUBLE_EQ(a.rmse_against(b), 1.0);  // sqrt((1 + 1) / 2)
}

TEST(DensityField, CoverageOfSubset) {
  DensityField full(Box3::unit(), {4, 1, 1});
  full.add(at_positions({{0.1, 0.5, 0.5},
                         {0.3, 0.5, 0.5},
                         {0.6, 0.5, 0.5},
                         {0.9, 0.5, 0.5}}));
  full.normalize();
  DensityField half(Box3::unit(), {4, 1, 1});
  half.add(at_positions({{0.1, 0.5, 0.5}, {0.6, 0.5, 0.5}}));
  half.normalize();
  EXPECT_DOUBLE_EQ(half.coverage_of(full), 0.5);
  EXPECT_DOUBLE_EQ(full.coverage_of(full), 1.0);
}

TEST(DensityField, EmptyFieldNormalizesSafely) {
  DensityField f(Box3::unit(), {2, 2, 2});
  f.normalize();
  EXPECT_EQ(f.samples(), 0u);
  DensityField g(Box3::unit(), {2, 2, 2});
  g.normalize();
  EXPECT_DOUBLE_EQ(f.rmse_against(g), 0.0);
}

TEST(DensityField, RejectsInvalidConstruction) {
  EXPECT_THROW(DensityField(Box3::empty(), {1, 1, 1}), ConfigError);
  EXPECT_THROW(DensityField(Box3::unit(), {0, 1, 1}), ConfigError);
}

}  // namespace
}  // namespace spio
