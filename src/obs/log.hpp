#pragma once

/// \file log.hpp
/// Leveled structured logging (docs/OBSERVABILITY.md).
///
/// A log site builds an `Event` with a severity and a dotted event name,
/// chains `kv()` fields onto it, and the line is emitted when the event
/// goes out of scope:
///
///   obs::log::Event(obs::log::Level::kWarn, "faultsim.rewrite")
///       .kv("file", path).kv("attempt", attempt);
///
/// renders as
///
///   [spio] WARN  r2 +15234.7us faultsim.rewrite file=File_2.bin attempt=2
///
/// Sinks and levels come from `SPIO_LOG=level[:path]` (levels: trace,
/// debug, info, warn, error, off; default sink stderr) or the setters
/// below. Cost model: with logging off (the default) a log site is one
/// relaxed atomic load — `kv()` and the destructor return immediately —
/// so hot paths may log unconditionally. Active events are also pushed
/// into the always-on flight recorder, so the last log lines before a
/// failure appear in postmortem bundles even when no sink is configured.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace spio::obs::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

namespace detail {
/// Minimum emitted level; kOff disables every site. Inline so `enabled`
/// compiles to one relaxed load.
inline std::atomic<int> g_min_level{static_cast<int>(Level::kOff)};
}  // namespace detail

/// The fast-path guard: true when events at `l` would be emitted.
inline bool enabled(Level l) {
  return static_cast<int>(l) >=
         detail::g_min_level.load(std::memory_order_relaxed);
}

/// Upper-case, width-5 level tag ("TRACE", "WARN ", ...).
const char* level_name(Level l);

/// Parse a level keyword ("warn"); returns false on unknown input.
bool parse_level(std::string_view text, Level* out);

/// Parse an `SPIO_LOG` spec: `level` or `level:path`. Returns false
/// (leaving the outputs untouched) on a malformed spec.
bool parse_spec(std::string_view spec, Level* level, std::string* path);

/// Set the minimum emitted level (kOff silences everything).
void set_level(Level l);
Level level();

/// Redirect emitted lines to `path` (append mode); an empty path
/// restores the default stderr sink.
void set_sink_path(const std::string& path);

/// Apply `SPIO_LOG` from the environment (idempotent; also runs via a
/// static initializer in any binary linking this file).
void init_from_env();

namespace detail {
void emit(Level l, const std::string& line);
}

/// One structured log event; emits on destruction when its level passes
/// the filter at construction time. Inactive events do no work: `kv` is
/// a relaxed-load-guarded no-op and the line buffer stays empty.
class Event {
 public:
  Event(Level l, const char* event);
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& kv(std::string_view key, std::string_view value);
  Event& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  Event& kv(std::string_view key, const std::string& value) {
    return kv(key, std::string_view(value));
  }
  Event& kv(std::string_view key, bool value) {
    return kv(key, value ? std::string_view("true") : std::string_view("false"));
  }
  Event& kv(std::string_view key, double value);
  Event& kv(std::string_view key, std::uint64_t value);
  Event& kv(std::string_view key, std::int64_t value);
  /// Funnel every other integer width (int, unsigned, size_t, ...) into
  /// the two fixed-width overloads without colliding with them on LP64.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::uint64_t> &&
             !std::is_same_v<T, std::int64_t>)
  Event& kv(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>)
      return kv(key, static_cast<std::int64_t>(value));
    else
      return kv(key, static_cast<std::uint64_t>(value));
  }

 private:
  bool active_;
  Level level_;
  const char* event_;
  std::uint64_t qid_;  // active query at construction (0 = none)
  std::string line_;
};

}  // namespace spio::obs::log
