file(REMOVE_RECURSE
  "libspio_workload.a"
)
