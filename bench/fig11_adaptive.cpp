/// \file fig11_adaptive.cpp
/// Figure 11: adaptive vs non-adaptive aggregation write time as the
/// particle distribution becomes increasingly non-uniform (particles
/// occupy 100% down to 12.5% of the domain; total particle count fixed;
/// 4096 ranks). Part 1 models Mira and Theta; part 2 runs both schemes
/// for real at thread scale and verifies the structural claims (files
/// only for occupied regions, aggregators spread over the full rank
/// space).

#include <chrono>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_env.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "iosim/write_model.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;
using namespace spio::iosim;

namespace {

const std::vector<double> kCoverage = {1.0, 0.8, 0.6, 0.5, 0.4, 0.25, 0.125};

void model_panel(const MachineProfile& m) {
  Table t("Figure 11 (model): " + m.name +
              " — write time (s), 4096 ranks, fixed total particles",
          {"% of domain occupied", "non-adaptive", "adaptive"});
  for (const double c : kCoverage) {
    AdaptiveCase non_adaptive;
    non_adaptive.coverage = c;
    non_adaptive.adaptive = false;
    AdaptiveCase adaptive = non_adaptive;
    adaptive.adaptive = true;
    t.row()
        .add_double(100.0 * c, 1)
        .add_double(model_adaptive_write(m, non_adaptive).total_seconds(), 2)
        .add_double(model_adaptive_write(m, adaptive).total_seconds(), 2);
  }
  t.print(std::cout);
  std::cout << '\n';
}

void functional_panel() {
  constexpr int kRanks = 64;
  // Fixed total: ranks inside the occupied region share it evenly.
  constexpr std::uint64_t kTotal = 64 * 2000;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 4});

  Table t("Figure 11 (functional, this machine): 64 ranks, fixed total "
          "particles",
          {"coverage %", "scheme", "files", "aggregator span",
           "wall (ms)"});

  for (const double c : {1.0, 0.5, 0.25}) {
    const Box3 region = workload::coverage_region(decomp.domain(), c);
    // Count occupied ranks to split the fixed total evenly.
    int occupied = 0;
    for (int r = 0; r < kRanks; ++r)
      if (decomp.patch(r).overlaps(region)) ++occupied;
    const std::uint64_t per_rank = kTotal / static_cast<std::uint64_t>(occupied);

    for (const bool adaptive : {false, true}) {
      TempDir dir("fig11");
      WriterConfig cfg;
      cfg.dir = dir.path();
      cfg.factor = {2, 2, 2};
      cfg.adaptive = adaptive;
      WriteStats job{};
      std::mutex mu;
      const auto t0 = std::chrono::steady_clock::now();
      simmpi::run(kRanks, [&](simmpi::Comm& comm) {
        const auto local = workload::uniform_in_region(
            Schema::uintah(), decomp.patch(comm.rank()), region, per_rank,
            stream_seed(11, static_cast<std::uint64_t>(comm.rank())),
            static_cast<std::uint64_t>(comm.rank()) * per_rank);
        const WriteStats s = write_dataset(comm, decomp, local, cfg);
        std::lock_guard lk(mu);
        job = WriteStats::max_over(job, s);
      });
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      // Span of aggregator ranks actually used (paper: adaptive spreads
      // them over the whole rank space; non-adaptive clusters them in
      // the occupied prefix).
      const Dataset ds = Dataset::open(dir.path());
      int lo_rank = kRanks, hi_rank = -1;
      for (const auto& f : ds.metadata().files) {
        lo_rank = std::min(lo_rank, static_cast<int>(f.aggregator_rank));
        hi_rank = std::max(hi_rank, static_cast<int>(f.aggregator_rank));
      }
      t.row()
          .add_double(100.0 * c, 0)
          .add(adaptive ? "adaptive" : "non-adaptive")
          .add_int(ds.file_count())
          .add(std::to_string(lo_rank) + ".." + std::to_string(hi_rank))
          .add_double(ms, 1);
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  spio::bench::init_observability();
  model_panel(MachineProfile::mira());
  model_panel(MachineProfile::theta());
  functional_panel();
  std::cout << "paper reference: adaptive aggregation improves write time "
               "on both machines;\non Mira the gap grows as coverage "
               "shrinks (idle dedicated IONs under the\nnon-adaptive "
               "scheme); on Theta placement matters little.\n";
  return 0;
}
