#include "core/density.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spio {

DensityField::DensityField(const Box3& domain, const Vec3i& dims)
    : domain_(domain), dims_(dims) {
  SPIO_CHECK(!domain.is_empty(), ConfigError,
             "density field needs a non-empty domain");
  SPIO_CHECK(dims.x >= 1 && dims.y >= 1 && dims.z >= 1, ConfigError,
             "density field dims must be >= 1, got " << dims);
  values_.assign(static_cast<std::size_t>(dims.product()), 0.0);
}

void DensityField::add(const ParticleBuffer& buf, std::size_t count) {
  SPIO_EXPECTS(!normalized_);
  count = std::min(count, buf.size());
  const Vec3d size = domain_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const Vec3d rel = (buf.position(i) - domain_.lo) / size;
    Vec3i c;
    for (int a = 0; a < 3; ++a) {
      c[a] = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(rel[a] * static_cast<double>(dims_[a])),
          0, dims_[a] - 1);
    }
    values_[static_cast<std::size_t>(c.x +
                                     dims_.x * (c.y + dims_.y * c.z))] += 1.0;
    ++samples_;
  }
}

void DensityField::normalize() {
  if (normalized_ || samples_ == 0) {
    normalized_ = true;
    return;
  }
  const double inv = 1.0 / static_cast<double>(samples_);
  for (double& v : values_) v *= inv;
  normalized_ = true;
}

double DensityField::rmse_against(const DensityField& other) const {
  SPIO_EXPECTS(dims_ == other.dims_);
  SPIO_EXPECTS(normalized_ && other.normalized_);
  double acc = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = values_[i] - other.values_[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double DensityField::coverage_of(const DensityField& reference) const {
  SPIO_EXPECTS(dims_ == reference.dims_);
  int occupied = 0, hit = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (reference.values_[i] > 0) {
      ++occupied;
      if (values_[i] > 0) ++hit;
    }
  }
  return occupied ? static_cast<double>(hit) / occupied : 1.0;
}

}  // namespace spio
