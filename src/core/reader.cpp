#include "core/reader.hpp"

#include <algorithm>
#include <chrono>

#include "core/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/serialize.hpp"
#include "workload/decomposition.hpp"

namespace spio {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Return-side counters for one query (naming: docs/OBSERVABILITY.md).
/// The scan-side counters live in `read_data_file`, so query layers and
/// direct file readers never double-count.
void publish_returned(std::uint64_t particles, std::uint64_t bytes) {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("reader.particles_returned").add(particles);
  reg.counter("reader.bytes_returned").add(bytes);
  const std::uint64_t read = reg.counter("reader.bytes_read").value();
  const std::uint64_t ret = reg.counter("reader.bytes_returned").value();
  if (ret > 0)
    reg.gauge("reader.read_amplification")
        .set(static_cast<double>(read) / static_cast<double>(ret));
}

}  // namespace

ReadStats ReadStats::max_over(const ReadStats& a, const ReadStats& b) {
  ReadStats m;
  m.files_opened = a.files_opened + b.files_opened;
  m.bytes_read = a.bytes_read + b.bytes_read;
  m.particles_scanned = a.particles_scanned + b.particles_scanned;
  m.particles_returned = a.particles_returned + b.particles_returned;
  m.file_io_seconds = std::max(a.file_io_seconds, b.file_io_seconds);
  m.exchange_seconds = std::max(a.exchange_seconds, b.exchange_seconds);
  return m;
}

Dataset::Dataset(std::filesystem::path dir, DatasetMetadata meta)
    : dir_(std::move(dir)), meta_(std::move(meta)) {
  if (meta_.has_bounds && !meta_.files.empty()) {
    index_ = std::make_shared<FileIndex>(meta_);
  }
}

Dataset Dataset::open(const std::filesystem::path& dir) {
  try {
    return Dataset(dir, DatasetMetadata::load(dir));
  } catch (const Error&) {
    // Unreadable metadata under an open write journal means the writer
    // crashed mid-write: report the richer diagnosis (and how to repair)
    // instead of a bare I/O or parse failure.
    if (WriteJournal::present(dir)) {
      throw IncompleteDatasetError(
          "'" + dir.string() +
          "' holds an interrupted write (journal present, metadata "
          "unreadable); run check_and_repair to clear it");
    }
    throw;
  }
}

std::vector<int> Dataset::intersecting(const Box3& box) const {
  if (index_) return index_->query(box);
  // Defers to the metadata's linear path, which also raises the
  // "no spatial metadata" error for bound-less datasets.
  return meta_.files_intersecting(box);
}

std::uint64_t Dataset::level_prefix_count(int file_index, int levels,
                                          int n_readers) const {
  SPIO_EXPECTS(file_index >= 0 && file_index < file_count());
  SPIO_EXPECTS(n_readers >= 1);
  const FileRecord& f = meta_.files[static_cast<std::size_t>(file_index)];
  if (levels < 0) return f.particle_count;
  if (meta_.total_particles == 0) return 0;
  const std::uint64_t global =
      lod_cumulative(meta_.lod, n_readers, levels, meta_.total_particles);
  // Proportional share of this file, rounded up so that reading "all
  // levels" always yields the whole file. 128-bit intermediate: counts can
  // be large enough for the product to overflow 64 bits.
  __extension__ typedef unsigned __int128 uint128_t;
  const uint128_t num = static_cast<uint128_t>(global) * f.particle_count +
                        meta_.total_particles - 1;
  const auto share =
      static_cast<std::uint64_t>(num / meta_.total_particles);
  return std::min(share, f.particle_count);
}

ParticleBuffer Dataset::read_data_file(int file_index, int levels,
                                       int n_readers,
                                       ReadStats* stats) const {
  SPIO_EXPECTS(file_index >= 0 && file_index < file_count());
  obs::ScopedSpan span("read.file", "reader");
  const Clock::time_point t0 = Clock::now();
  const FileRecord& f = meta_.files[static_cast<std::size_t>(file_index)];
  const std::uint64_t want = level_prefix_count(file_index, levels, n_readers);
  const std::uint64_t record = meta_.schema.record_size();

  const auto path = dir_ / f.file_name();
  const std::uint64_t on_disk = file_size_bytes(path);
  SPIO_CHECK(on_disk == f.particle_count * record, FormatError,
             "data file '" << f.file_name() << "' holds " << on_disk
                           << " bytes but metadata expects "
                           << f.particle_count * record);

  ParticleBuffer buf(meta_.schema);
  buf.adopt_bytes(read_file_range(path, 0, want * record));
  if (stats) {
    stats->files_opened += 1;
    stats->bytes_read += want * record;
    stats->particles_scanned += want;
    stats->particles_returned += want;
    stats->file_io_seconds += seconds_since(t0);
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("reader.files_opened").add(1);
    reg.counter("reader.bytes_read").add(want * record);
    reg.counter("reader.particles_scanned").add(want);
  }
  return buf;
}

ParticleBuffer Dataset::query_box(const Box3& box, int levels, int n_readers,
                                  ReadStats* stats) const {
  obs::ScopedSpan span("read.query_box", "reader");
  const std::vector<int> hits = intersecting(box);
  ParticleBuffer out(meta_.schema);
  for (const int fi : hits) {
    const FileRecord& f = meta_.files[static_cast<std::size_t>(fi)];
    ReadStats local;
    ParticleBuffer file_buf = read_data_file(fi, levels, n_readers, &local);
    if (stats) {
      stats->files_opened += local.files_opened;
      stats->bytes_read += local.bytes_read;
      stats->particles_scanned += local.particles_scanned;
    }
    if (box.contains_box(f.bounds)) {
      // Whole file lies inside the query: no per-particle filter needed —
      // the payoff of spatially-coherent files.
      if (stats) stats->particles_returned += file_buf.size();
      out.append_bytes(file_buf.bytes());
    } else {
      for (std::size_t i = 0; i < file_buf.size(); ++i) {
        if (box.contains(file_buf.position(i))) {
          out.append_from(file_buf, i);
          if (stats) stats->particles_returned += 1;
        }
      }
    }
  }
  publish_returned(out.size(), out.byte_size());
  return out;
}

std::vector<int> Dataset::files_matching(
    const Box3& box, std::span<const RangeFilter> filters) const {
  std::vector<int> hits = intersecting(box);
  if (filters.empty() || !meta_.has_field_ranges) return hits;
  std::vector<int> out;
  for (const int fi : hits) {
    const FileRecord& f = meta_.files[static_cast<std::size_t>(fi)];
    bool possible = true;
    for (const RangeFilter& rf : filters) {
      const std::size_t idx = meta_.range_index(rf.field, rf.component);
      if (!f.field_ranges[idx].intersects(rf.lo, rf.hi)) {
        possible = false;
        break;
      }
    }
    if (possible) out.push_back(fi);
  }
  return out;
}

ParticleBuffer Dataset::query(const Box3& box,
                              std::span<const RangeFilter> filters,
                              int levels, int n_readers,
                              ReadStats* stats) const {
  obs::ScopedSpan span("read.query", "reader");
  for (const RangeFilter& rf : filters) {
    SPIO_CHECK(rf.field < meta_.schema.field_count(), ConfigError,
               "range filter on field " << rf.field << " but schema has "
                                        << meta_.schema.field_count());
    SPIO_CHECK(rf.component < meta_.schema.fields()[rf.field].components,
               ConfigError,
               "range filter component " << rf.component
                                         << " out of bounds");
    SPIO_CHECK(rf.lo <= rf.hi, ConfigError,
               "range filter with lo > hi on field " << rf.field);
  }
  const std::vector<int> hits = files_matching(box, filters);
  ParticleBuffer out(meta_.schema);
  for (const int fi : hits) {
    ParticleBuffer file_buf = read_data_file(fi, levels, n_readers, stats);
    if (stats) stats->particles_returned -= file_buf.size();  // recount below
    for (std::size_t i = 0; i < file_buf.size(); ++i) {
      if (!box.contains(file_buf.position(i))) continue;
      bool keep = true;
      for (const RangeFilter& rf : filters) {
        const FieldDesc& fd = meta_.schema.fields()[rf.field];
        const double v =
            fd.type == FieldType::kF64
                ? file_buf.get_f64(i, rf.field, rf.component)
                : static_cast<double>(
                      file_buf.get_f32(i, rf.field, rf.component));
        if (v < rf.lo || v > rf.hi) {
          keep = false;
          break;
        }
      }
      if (keep) {
        out.append_from(file_buf, i);
        if (stats) stats->particles_returned += 1;
      }
    }
  }
  publish_returned(out.size(), out.byte_size());
  return out;
}

std::uint64_t Dataset::stream_box(
    const Box3& box,
    const std::function<bool(const ParticleBuffer& chunk)>& sink,
    int levels, int n_readers, ReadStats* stats) const {
  SPIO_EXPECTS(sink != nullptr);
  obs::ScopedSpan span("read.stream_box", "reader");
  std::uint64_t delivered = 0;
  for (const int fi : intersecting(box)) {
    const FileRecord& f = meta_.files[static_cast<std::size_t>(fi)];
    ReadStats local;
    ParticleBuffer file_buf = read_data_file(fi, levels, n_readers, &local);
    if (stats) {
      stats->files_opened += local.files_opened;
      stats->bytes_read += local.bytes_read;
      stats->particles_scanned += local.particles_scanned;
    }
    if (!box.contains_box(f.bounds)) {
      // Filter in place: compact matching records to the front.
      std::size_t keep = 0;
      for (std::size_t i = 0; i < file_buf.size(); ++i) {
        if (box.contains(file_buf.position(i))) {
          if (keep != i) file_buf.swap_records(keep, i);
          ++keep;
        }
      }
      file_buf.truncate(keep);
    }
    if (file_buf.empty()) continue;
    delivered += file_buf.size();
    if (stats) stats->particles_returned += file_buf.size();
    if (!sink(file_buf)) break;
  }
  publish_returned(delivered, delivered * meta_.schema.record_size());
  return delivered;
}

ParticleBuffer Dataset::query_box_scan_all(const Box3& box,
                                           ReadStats* stats) const {
  obs::ScopedSpan span("read.scan_all", "reader");
  ParticleBuffer out(meta_.schema);
  for (int fi = 0; fi < file_count(); ++fi) {
    ReadStats local;
    ParticleBuffer file_buf = read_data_file(fi, -1, 1, &local);
    if (stats) {
      stats->files_opened += local.files_opened;
      stats->bytes_read += local.bytes_read;
      stats->particles_scanned += local.particles_scanned;
    }
    for (std::size_t i = 0; i < file_buf.size(); ++i) {
      if (box.contains(file_buf.position(i))) {
        out.append_from(file_buf, i);
        if (stats) stats->particles_returned += 1;
      }
    }
  }
  publish_returned(out.size(), out.byte_size());
  return out;
}

int Dataset::level_count(int n_readers) const {
  return lod_level_count(meta_.lod, n_readers, meta_.total_particles);
}

Box3 reader_tile(const Box3& domain, int rank, int nranks) {
  SPIO_EXPECTS(nranks >= 1);
  SPIO_EXPECTS(rank >= 0 && rank < nranks);
  return PatchDecomposition::for_ranks(domain, nranks).patch(rank);
}

}  // namespace spio
