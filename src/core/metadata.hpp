#pragma once

/// \file metadata.hpp
/// The spatial metadata file (paper §3.5, Fig. 4): the dataset-level
/// header plus one record per data file holding the file's bounding box,
/// aggregator rank and particle count. Readers use the boxes to open only
/// the files a spatial query touches, and the counts + LOD parameters to
/// compute level prefixes.
///
/// On-disk layout of `meta.spio` (little endian):
///   magic "SPIO" | version u32 | endian-probe u32 (0x01020304)
///   schema | domain lo/hi (6 f64) | lod P u64 | lod S f64
///   heuristic u8 | has_bounds u8 | has_field_ranges u8 | has_zone_maps u8
///   total particles u64 | file count u32
///   then per file: partition id u32 | aggregator rank u32 | count u64 |
///                  lo[3] f64 | hi[3] f64      (iff has_bounds)
///                  min/max f64 per field component (iff has_field_ranges)
///   then, iff has_bounds and the file table is non-empty, the k-d tree
///   footer (query_plan/kd_tree.hpp; docs/FORMAT.md "k-d footer").
///
/// Version 2 files (no has_zone_maps flag, no footer) still parse: the
/// tree is rebuilt from the file boxes — the build is deterministic, so
/// the rebuilt tree is byte-identical to what v3 would have stored.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/lod.hpp"
#include "util/box.hpp"
#include "workload/schema.hpp"

namespace spio {

class BoxKdTree;

/// Closed min/max interval of one scalar field component over one data
/// file — the paper's §3.5 extension ("storing, e.g., the minimum and
/// maximum values of scalar fields of the region... to narrow down
/// range-queries on these non-spatial attributes").
struct FieldRange {
  double min = 0;
  double max = 0;

  bool operator==(const FieldRange&) const = default;

  /// True when [min, max] intersects [lo, hi].
  constexpr bool intersects(double lo, double hi) const {
    return min <= hi && max >= lo;
  }
};

/// Descriptor of one data file, as stored in the metadata file. The grey
/// columns of the paper's Fig. 4 (file name is derived from the aggregator
/// rank) plus the particle count needed for LOD prefix arithmetic and the
/// per-field value ranges for attribute queries.
struct FileRecord {
  std::uint32_t partition_id = 0;
  std::uint32_t aggregator_rank = 0;
  std::uint64_t particle_count = 0;
  Box3 bounds;  // the partition's box; files are disjoint and cover the
                // occupied domain
  /// One range per field component, flattened in schema order (empty when
  /// the dataset was written without field ranges).
  std::vector<FieldRange> field_ranges;

  bool operator==(const FileRecord&) const = default;

  /// Data file name, derived from the aggregator rank as in Fig. 4.
  std::string file_name() const {
    return "File_" + std::to_string(aggregator_rank) + ".bin";
  }

  /// (De)serialization of one record; `with_bounds`/`with_ranges` mirror
  /// the dataset-level flags. Also used to ship records through the
  /// metadata gather at the end of a write.
  void serialize(BinaryWriter& w, bool with_bounds, bool with_ranges) const;
  static FileRecord deserialize(BinaryReader& r, bool with_bounds,
                                bool with_ranges, std::size_t range_count);
};

/// Dataset-level metadata: everything a reader needs to plan spatial and
/// LOD-bounded reads without touching the data files.
struct DatasetMetadata {
  static constexpr std::uint32_t kMagic = 0x4F495053;  // "SPIO"
  static constexpr std::uint32_t kVersion = 3;
  /// Oldest version `deserialize` still accepts (pre-k-d-footer).
  static constexpr std::uint32_t kMinVersion = 2;
  /// Name of the metadata file within a dataset directory.
  static constexpr const char* kFileName = "meta.spio";

  Schema schema = Schema::uintah();
  Box3 domain;
  LodParams lod;
  LodHeuristic heuristic = LodHeuristic::kRandom;
  /// False for datasets written without spatial metadata (the Fig. 7
  /// baseline): bounding boxes are absent and spatial queries must scan
  /// every file.
  bool has_bounds = true;
  /// True when per-file field min/max ranges are recorded (§3.5
  /// extension); enables attribute range queries without reading data.
  bool has_field_ranges = true;
  /// True when the dataset was written with the `zones.spio` sidecar
  /// (query_plan/zone_map.hpp). Lets readers distinguish "no zones were
  /// ever written" from "the sidecar went missing" — only the latter is
  /// a degradation worth logging.
  bool has_zone_maps = false;
  std::uint64_t total_particles = 0;
  std::vector<FileRecord> files;
  /// The k-d tree over `files[*].bounds` — parsed from the v3 footer or
  /// rebuilt for v2 datasets; null when bounds are absent or the file
  /// table is empty. Shared so metadata copies stay cheap.
  std::shared_ptr<const BoxKdTree> spatial_tree;

  /// Field-wise equality, excluding `spatial_tree`: the tree is a pure
  /// deterministic function of the file boxes, so two metadata objects
  /// that agree on everything else describe the same dataset whether or
  /// not a tree happens to be attached.
  bool operator==(const DatasetMetadata& o) const {
    return schema == o.schema && domain == o.domain && lod == o.lod &&
           heuristic == o.heuristic && has_bounds == o.has_bounds &&
           has_field_ranges == o.has_field_ranges &&
           has_zone_maps == o.has_zone_maps &&
           total_particles == o.total_particles && files == o.files;
  }

  /// Serialize to bytes / parse from bytes. Parsing validates magic,
  /// version, endianness and internal consistency and throws
  /// `FormatError` on any violation.
  std::vector<std::byte> serialize() const;
  static DatasetMetadata deserialize(std::span<const std::byte> bytes);

  /// Write to / read from `<dir>/meta.spio`.
  void save(const std::filesystem::path& dir) const;
  static DatasetMetadata load(const std::filesystem::path& dir);

  /// Indices into `files` of the data files whose bounds intersect `box`.
  /// Requires `has_bounds`.
  std::vector<int> files_intersecting(const Box3& box) const;

  /// Index of field component (field, component) into a
  /// `FileRecord::field_ranges` table for this schema.
  std::size_t range_index(std::size_t field, std::uint32_t component) const;

  /// Total number of field components (= size of each ranges table).
  std::size_t range_count() const;
};

}  // namespace spio
