#pragma once

/// \file mailbox.hpp
/// Per-rank message queue with MPI-style (source, tag) matching.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "simmpi/message.hpp"

namespace simmpi {

/// One mailbox per rank. Senders `deliver()` messages; the owning rank
/// `receive()`s them with source/tag matching. Matching preserves MPI's
/// non-overtaking rule: among messages from the same source with the same
/// tag, arrival order is receive order (we scan the queue in arrival
/// order).
///
/// Blocked receivers register a *posted receive*: `deliver()` hands a
/// matching payload straight to the waiting receiver's slot and wakes
/// exactly that receiver (`notify_one` on its private condition
/// variable), skipping the queue insert / scan / erase of the slow path.
/// A receiver only posts after finding no match in the queue (under the
/// same lock), so direct hand-off cannot overtake an already-queued
/// message.
class Mailbox {
 public:
  /// Enqueue a message (called from the sender's thread).
  void deliver(Message&& m);

  /// Block until a message matching (src, tag) is available and return it.
  /// `src`/`tag` may be `kAnySource`/`kAnyTag`. Throws `Aborted` if the
  /// abort flag becomes set while waiting.
  Message receive(int src, int tag, const std::atomic<bool>& abort);

  /// Non-blocking receive; returns the message if one matches now.
  std::optional<Message> try_receive(int src, int tag);

  /// Non-blocking probe: reports the envelope of the first matching
  /// message without removing it.
  bool probe(int src, int tag, int* out_src = nullptr, int* out_tag = nullptr,
             std::size_t* out_bytes = nullptr);

  /// Number of queued (unreceived) messages; used by tests.
  std::size_t pending() const;

  /// Wake any blocked receiver so it can observe the abort flag.
  void interrupt();

 private:
  /// A blocked receiver's posted receive; lives on the receiver's stack
  /// for the duration of the wait.
  struct Waiter {
    int src = kAnySource;
    int tag = kAnyTag;
    bool ready = false;
    Message msg;
    std::condition_variable cv;
  };

  static bool matches(const Message& m, int src, int tag) {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// Index of the first matching message, or npos.
  std::size_t find_match(int src, int tag) const;

  mutable std::mutex mu_;
  std::deque<Message> queue_;
  std::vector<Waiter*> waiters_;  // registration (FIFO) order
};

}  // namespace simmpi
