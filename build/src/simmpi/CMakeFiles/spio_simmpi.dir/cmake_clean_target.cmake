file(REMOVE_RECURSE
  "libspio_simmpi.a"
)
