#include "faultsim/reliable.hpp"

#include <gtest/gtest.h>

#include "faultsim/fault_plan.hpp"
#include "simmpi/runtime.hpp"

namespace spio::faultsim {
namespace {

using simmpi::Comm;
using simmpi::RunOptions;
using simmpi::SendAction;

constexpr int kTag = kTagParticleExchange;

std::vector<std::byte> payload_for(int src, int dst) {
  // Distinct, recognizable contents per (src, dst) pair.
  std::vector<std::byte> p(8);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::byte>(17 * src + 3 * dst + static_cast<int>(i));
  return p;
}

/// All-to-all over reliable_exchange (including self-sends); verifies
/// every payload arrives intact exactly once.
void all_to_all_job(Comm& comm, const RetryPolicy& policy) {
  std::vector<Outbound> out;
  std::vector<int> expect;
  for (int d = 0; d < comm.size(); ++d) {
    out.push_back({d, payload_for(comm.rank(), d)});
    expect.push_back(d);
  }
  const auto in = reliable_exchange(comm, std::move(out), expect, kTag,
                                    policy);
  ASSERT_EQ(in.size(), static_cast<std::size_t>(comm.size()));
  for (int s = 0; s < comm.size(); ++s)
    EXPECT_EQ(in[static_cast<std::size_t>(s)], payload_for(s, comm.rank()))
        << "from rank " << s << " at rank " << comm.rank();
}

TEST(ReliableExchange, FaultFreeAllToAll) {
  simmpi::run(4, [&](Comm& comm) { all_to_all_job(comm, {}); });
}

TEST(ReliableExchange, RecoversDroppedMessages) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDrop, -1, -1, kTag, 0, 2});
  FaultInjector inj(plan, 4);
  RetryPolicy policy;
  policy.ack_timeout = std::chrono::milliseconds(20);
  simmpi::run(4, RunOptions{&inj},
              [&](Comm& comm) { all_to_all_job(comm, policy); });
  EXPECT_FALSE(inj.events().empty());
}

TEST(ReliableExchange, DeduplicatesDuplicatedMessages) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDuplicate, -1, -1, kTag, 0, 3});
  FaultInjector inj(plan, 4);
  simmpi::run(4, RunOptions{&inj},
              [&](Comm& comm) { all_to_all_job(comm, {}); });
}

TEST(ReliableExchange, ToleratesDelayedMessages) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDelay, -1, -1, kTag, 0, 2});
  FaultInjector inj(plan, 4);
  RetryPolicy policy;
  policy.ack_timeout = std::chrono::milliseconds(20);
  simmpi::run(4, RunOptions{&inj},
              [&](Comm& comm) { all_to_all_job(comm, policy); });
}

TEST(ReliableExchange, MixedFaultsAcrossBothDirections) {
  FaultPlan plan;
  plan.messages.push_back({SendAction::kDrop, 0, -1, kTag, 0, 1});
  plan.messages.push_back({SendAction::kDuplicate, 1, -1, kTag, 0, 2});
  plan.messages.push_back({SendAction::kDelay, 2, -1, kTag, 0, 1});
  FaultInjector inj(plan, 3);
  RetryPolicy policy;
  policy.ack_timeout = std::chrono::milliseconds(20);
  simmpi::run(3, RunOptions{&inj},
              [&](Comm& comm) { all_to_all_job(comm, policy); });
}

TEST(ReliableExchange, UnresponsivePeerEndsInStructuredFaultError) {
  // Rank 1 never participates, so rank 0's message is never acknowledged:
  // the sender must fail with FaultError after its bounded retries — a
  // structured outcome, never a hang.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.ack_timeout = std::chrono::milliseconds(5);
  EXPECT_THROW(
      simmpi::run(2,
                  [&](Comm& comm) {
                    if (comm.rank() != 0) return;  // rank 1: deaf
                    std::vector<Outbound> out;
                    out.push_back({1, payload_for(0, 1)});
                    reliable_exchange(comm, std::move(out), {}, kTag, policy);
                  }),
      FaultError);
}

TEST(ReliableExchange, DroppedAcksTerminateInBoundedTime) {
  // Dropping an ACK forces a retransmission, which the receiver dedups
  // and re-ACKs — *if* it is still in the exchange. A receiver that is
  // already satisfied may leave before the retransmission arrives (the
  // two-generals limit: no closing handshake), stranding the sender. The
  // protocol's actual guarantee is bounded termination: either the
  // exchange completes correctly or the sender raises FaultError — never
  // a hang. This is why random chaos plans never target ACK tags.
  FaultPlan plan;
  plan.messages.push_back(
      {SendAction::kDrop, -1, -1, ack_tag(kTag), 0, 1});
  FaultInjector inj(plan, 2);
  RetryPolicy policy;
  policy.ack_timeout = std::chrono::milliseconds(10);
  try {
    simmpi::run(2, RunOptions{&inj},
                [&](Comm& comm) { all_to_all_job(comm, policy); });
  } catch (const FaultError&) {
    // Structured failure: a satisfied peer left the exchange first.
  }
  EXPECT_FALSE(inj.events().empty());
}

}  // namespace
}  // namespace spio::faultsim
