file(REMOVE_RECURSE
  "libspio_core.a"
)
