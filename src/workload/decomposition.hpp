#pragma once

/// \file decomposition.hpp
/// Uniform block decomposition of the simulation domain across ranks: an
/// `nx × ny × nz` process grid of equally-sized axis-aligned patches. This
/// is the simulation-side partitioning that the aggregation grid aligns
/// itself with (paper §3.1).

#include <cstdint>

#include "util/box.hpp"
#include "util/vec3.hpp"

namespace spio {

class PatchDecomposition {
 public:
  /// \param domain physical extent of the whole simulation
  /// \param grid number of processes along each axis (all >= 1)
  PatchDecomposition(const Box3& domain, const Vec3i& grid);

  /// Factor `nranks` into a near-cubic process grid (largest factors on x)
  /// and build the decomposition. Throws `ConfigError` if nranks <= 0.
  static PatchDecomposition for_ranks(const Box3& domain, int nranks);

  const Box3& domain() const { return domain_; }
  const Vec3i& grid() const { return grid_; }
  int rank_count() const { return static_cast<int>(grid_.product()); }

  /// Physical size of one patch.
  Vec3d patch_size() const;

  /// Grid coordinate of `rank` (x varies fastest).
  Vec3i coord_of(int rank) const;
  /// Rank owning grid coordinate `c`.
  int rank_of(const Vec3i& c) const;

  /// Physical extent of `rank`'s patch. The patch at the domain's upper
  /// boundary is computed from exact fractions so that patch unions tile
  /// the domain without gaps.
  Box3 patch(int rank) const;

  /// Grid coordinate of the patch containing point `p` (clamped to the
  /// domain boundary so points exactly on `domain.hi` map to the last
  /// patch).
  Vec3i cell_of(const Vec3d& p) const;

  bool operator==(const PatchDecomposition& o) const = default;

 private:
  Box3 domain_;
  Vec3i grid_;
};

/// Factor `n` into three near-equal factors, sorted descending.
/// Used by `PatchDecomposition::for_ranks` and by readers choosing a
/// process grid for parallel queries.
Vec3i near_cubic_factors(int n);

}  // namespace spio
