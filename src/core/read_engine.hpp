#pragma once

/// \file read_engine.hpp
/// The shared read engine every query entry point routes through
/// (docs/PERF.md "Read path"). Three jobs:
///
///   1. **Worker pool** — a process-wide bounded `ThreadPool`
///      (`SPIO_READ_THREADS=n`, default = hardware concurrency clamped
///      to 16) so a query's N intersecting files are read and filtered
///      concurrently. Results are always merged in file-index order, so
///      output stays byte-identical to the serial path; a pool forced to
///      1 reproduces serial execution exactly.
///   2. **File-buffer cache** — an LRU cache of file *prefixes* keyed by
///      `(path, prefix_bytes)` with a byte budget
///      (`SPIO_READ_CACHE=bytes`, suffixes k/m/g accepted; default
///      256 MiB; `0` disables). Repeated box/LOD/timeseries/restart
///      queries against the same dataset skip disk entirely. Entries are
///      validated against the file's (size, mtime) signature on every
///      hit, so a dataset rewritten in place is never served stale.
///      Counters: `reader.cache.{hits,misses,bytes_evicted}`.
///   3. **Fused filter kernels** (`read_detail`) — run-detecting
///      compaction replacing the per-particle `contains` + `append_from`
///      loops: the position offset/stride is hoisted once per file and
///      contiguous matching records are copied with single `memcpy`s.
///      The original loops are retained as `*_reference` oracles
///      (mirroring `writer_detail::bin_particles_reference`), and
///      differential tests pin the fused kernels to them byte-for-byte.
///
/// Thread safety: `probe`/`fetch` and the cache maintenance hooks are
/// safe to call from any thread (simmpi ranks share one process and one
/// engine). `set_concurrency` swaps the pool and must not race in-flight
/// queries — call it between queries (tests and benchmarks only).

#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_pool.hpp"
#include "workload/decomposition.hpp"
#include "workload/particle_buffer.hpp"

namespace spio {

/// A predicate on one scalar field component: keep particles with value
/// in [lo, hi]. Combined with the spatial box by `Dataset::query`
/// (re-exported there as `Dataset::RangeFilter`).
struct RangeFilter {
  std::size_t field = 0;
  std::uint32_t component = 0;
  double lo = 0;
  double hi = 0;
};

/// (size, mtime) identity of a file at probe time; the cache's staleness
/// check. `mtime_ns` is 0 when the cache is disabled (not sampled).
struct FileSig {
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;
};

/// How a `fetch` was satisfied. `kBypass` = cache disabled (or an empty
/// prefix): a plain read, exactly the pre-engine behaviour.
enum class CacheOutcome : std::uint8_t { kBypass = 0, kHit = 1, kMiss = 2 };

/// Point-in-time cache counters (also mirrored into the metrics
/// registry as `reader.cache.*` when observability is on).
struct ReadCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< entries dropped (budget or stale)
  std::uint64_t bytes_evicted = 0;  ///< payload bytes of those entries
  std::uint64_t bytes_held = 0;     ///< current resident payload bytes
  std::uint64_t entries = 0;        ///< current resident entry count
};

/// An exactly-sized, immutable-after-fill byte block. Unlike
/// `std::vector`, construction does NOT zero the storage, so a cache
/// miss reads a file prefix in one pass (fread) instead of two
/// (memset + fread) — a full-memory-bandwidth saving on large prefixes.
class ByteBlock {
 public:
  explicit ByteBlock(std::size_t size)
      : data_(new std::byte[size]), size_(size) {}
  std::byte* data() { return data_.get(); }
  std::size_t size() const { return size_; }
  std::span<const std::byte> span() const { return {data_.get(), size_}; }

 private:
  std::unique_ptr<std::byte[]> data_;
  std::size_t size_;
};

class ReadEngine {
 public:
  /// The process-wide engine (thread-safe magic static). Configured from
  /// `SPIO_READ_THREADS` / `SPIO_READ_CACHE` on first use.
  static ReadEngine& instance();

  /// One file prefix as returned by `fetch`: shared with the cache when
  /// the cache holds it, owned when the fetch bypassed the cache.
  struct Fetched {
    std::shared_ptr<const ByteBlock> shared;
    std::vector<std::byte> owned;
    CacheOutcome outcome = CacheOutcome::kBypass;

    std::span<const std::byte> bytes() const {
      return shared ? shared->span() : std::span<const std::byte>(owned);
    }
    /// The payload, moved when uniquely owned (bypass) and copied when
    /// shared with the cache — for `ParticleBuffer::adopt_bytes`.
    std::vector<std::byte> take_or_copy() {
      if (!shared) return std::move(owned);
      const std::span<const std::byte> s = shared->span();
      return std::vector<std::byte>(s.begin(), s.end());
    }
  };

  /// Stat `path` (throws `IoError` when missing). Samples mtime only
  /// when the cache is on; a disabled cache keeps the pre-engine
  /// one-stat-per-read cost.
  FileSig probe(const std::filesystem::path& path) const;

  /// The first `prefix_bytes` of `path`, through the cache. `sig` must
  /// come from a `probe` of the same path (it validates cached entries
  /// and stamps fresh ones). Throws `IoError`/`FormatError` like
  /// `read_file_range` on a miss.
  Fetched fetch(const std::filesystem::path& path, std::uint64_t prefix_bytes,
                const FileSig& sig);

  /// The shared worker pool (size = `concurrency()`).
  ThreadPool& pool();
  /// Maximum concurrent per-file reads (1 = serial, inline).
  int concurrency() const;

  bool cache_enabled() const;
  std::uint64_t cache_budget() const;
  ReadCacheStats cache_stats() const;

  // -- maintenance / test hooks ------------------------------------------
  /// Drop every cached entry (counted as evictions).
  void clear_cache();
  /// Re-budget the cache; 0 disables it (and drops residents). Counters
  /// are preserved.
  void set_cache_budget(std::uint64_t bytes);
  /// Zero the hit/miss/eviction counters (residents stay).
  void reset_cache_stats();
  /// Swap the worker pool for one of `threads`. Must not race in-flight
  /// queries.
  void set_concurrency(int threads);

 private:
  ReadEngine();

  struct Entry {
    std::string key;
    std::shared_ptr<const ByteBlock> data;
    FileSig sig;
  };
  using LruList = std::list<Entry>;

  /// Unlink + account one resident entry (caller holds `mu_`).
  void evict_locked(LruList::iterator it);
  /// Evict from the tail until `bytes_held_ <= target` (caller holds
  /// `mu_`).
  void shrink_to_locked(std::uint64_t target);

  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> map_;
  std::uint64_t budget_ = 0;
  std::uint64_t bytes_held_ = 0;
  ReadCacheStats stats_;
  std::unique_ptr<ThreadPool> pool_;
};

namespace read_detail {

/// Parse a byte-size string with an optional k/m/g suffix (binary
/// multiples); the `SPIO_READ_CACHE` syntax. Returns false on garbage.
bool parse_size_bytes(const std::string& text, std::uint64_t* out);

/// Fused spatial filter: append every record of `bytes` whose position
/// lies in `box` (half-open, `Box3::contains`) to `out`, copying each
/// contiguous matching run with a single `memcpy` the moment the run
/// closes — while its bytes are still cache-hot from the scan. Returns
/// the number of records appended. Record order is preserved, so the
/// output is byte-identical to `filter_box_reference`. Callers that know
/// an upper bound should `reserve` `out` first to avoid regrowth.
std::uint64_t filter_box(std::span<const std::byte> bytes,
                         const Schema& schema, const Box3& box,
                         ParticleBuffer& out);

/// The retained pre-engine loop (`box.contains(position(i))` +
/// `append_from`), the differential-testing oracle for `filter_box`.
std::uint64_t filter_box_reference(std::span<const std::byte> bytes,
                                   const Schema& schema, const Box3& box,
                                   ParticleBuffer& out);

/// Fused spatial + attribute filter (the `Dataset::query` kernel): keep
/// records inside `box` whose filtered field components all fall in
/// their [lo, hi]. Field offsets and element types are hoisted once;
/// matching runs are copied with single `memcpy`s. NaN component values
/// pass a filter, exactly as in the reference (`!(v < lo || v > hi)`).
std::uint64_t filter_box_ranges(std::span<const std::byte> bytes,
                                const Schema& schema, const Box3& box,
                                std::span<const RangeFilter> filters,
                                ParticleBuffer& out);

/// The retained pre-engine loop, oracle for `filter_box_ranges`.
std::uint64_t filter_box_ranges_reference(std::span<const std::byte> bytes,
                                          const Schema& schema,
                                          const Box3& box,
                                          std::span<const RangeFilter> filters,
                                          ParticleBuffer& out);

/// Fused owner binning (the `distributed_read` kernel): append each
/// record to `outgoing[rank_of(cell_of(position))]`, copying runs with
/// equal owner with single `memcpy`s. `outgoing.size()` must equal
/// `decomp.rank_count()`. Per-owner record order is preserved.
void bin_by_owner(std::span<const std::byte> bytes, const Schema& schema,
                  const PatchDecomposition& decomp,
                  std::vector<ParticleBuffer>& outgoing);

/// The retained pre-engine loop, oracle for `bin_by_owner`.
void bin_by_owner_reference(std::span<const std::byte> bytes,
                            const Schema& schema,
                            const PatchDecomposition& decomp,
                            std::vector<ParticleBuffer>& outgoing);

}  // namespace read_detail

}  // namespace spio
