#pragma once

/// \file aggregation_grid.hpp
/// The aggregation-grid (paper §3.1): a rectilinear partitioning of (a
/// region of) the simulation domain into axis-aligned aggregation
/// partitions. Every particle falls into exactly one partition; all
/// particles of a partition are aggregated onto one process and written to
/// one file.
///
/// Two constructions are provided:
///  * `aligned(...)`: partition boundaries coincide with simulation patch
///    boundaries (partition size = an integer multiple of the patch size),
///    so each process's whole patch lies in exactly one partition and the
///    writer can skip the per-particle binning scan (§3.3).
///  * the general constructor: uniform partitioning of an arbitrary box,
///    used by the adaptive scheme (§6) where the grid covers only the
///    occupied sub-region.

#include <vector>

#include "core/partition_factor.hpp"
#include "core/spatial_partition.hpp"
#include "util/box.hpp"
#include "workload/decomposition.hpp"

namespace spio {

class AggregationGrid final : public SpatialPartitioning {
 public:
  /// General construction: partition `region` uniformly into
  /// `dims.x × dims.y × dims.z` boxes.
  AggregationGrid(const Box3& region, const Vec3i& dims);

  /// Aligned construction: partition boundaries are chosen from the patch
  /// boundaries of `decomp`, grouping `factor.px × py × pz` patches per
  /// partition (the trailing partition on an axis takes the remainder when
  /// the factor does not divide the process grid).
  static AggregationGrid aligned(const PatchDecomposition& decomp,
                                 const PartitionFactor& factor);

  /// Overall region covered by the grid.
  Box3 region() const override;
  const Vec3i& dims() const { return dims_; }
  int partition_count() const override {
    return static_cast<int>(dims_.product());
  }

  /// Index of the partition containing `p`. Points outside the region are
  /// clamped to the nearest boundary partition (the global domain's upper
  /// face thus belongs to the last partition).
  int partition_of_point(const Vec3d& p) const override;

  /// Same mapping as `partition_of_point`, devirtualized and O(1) for the
  /// per-particle binning loop: a closed-form index estimate from the
  /// (uniform) leading edge spacing, then a local walk against the stored
  /// edges. The walk makes the result *exactly* the binary search's — the
  /// estimate can be off where ceil-division shortens the trailing
  /// partition, or by an ulp right at an interior edge.
  int locate(const Vec3d& p) const {
    Vec3i c;
    for (int a = 0; a < 3; ++a) {
      const std::vector<double>& e = edges_[a];
      const std::int64_t dims = dims_[a];
      const double est = (p[a] - e.front()) * inv_cell_[a];
      std::int64_t i =
          est > 0.0 ? static_cast<std::int64_t>(est) : 0;  // NaN -> 0
      if (i > dims - 1) i = dims - 1;
      while (i + 1 < dims &&
             p[a] >= e[static_cast<std::size_t>(i) + 1])
        ++i;
      while (i > 0 && p[a] < e[static_cast<std::size_t>(i)]) --i;
      c[a] = i;
    }
    return static_cast<int>(c.x + dims_.x * (c.y + dims_.y * c.z));
  }

  /// Axis-aligned box of partition `idx`.
  Box3 partition_box(int idx) const override;

  Vec3i coord_of(int idx) const;
  int index_of(const Vec3i& c) const;

  /// Partition boundary coordinates along `axis` (`dims()[axis] + 1`
  /// strictly increasing entries); backs the binning loop's hoisted
  /// locator state.
  const std::vector<double>& edges(int axis) const { return edges_[axis]; }
  const Vec3d& inv_cell() const { return inv_cell_; }

  /// True when every patch of `decomp` lies entirely within a single
  /// partition — the precondition for the writer's no-scan fast path.
  bool is_aligned_with(const PatchDecomposition& decomp) const;

  bool operator==(const AggregationGrid& o) const {
    return dims_ == o.dims_ && edges_[0] == o.edges_[0] &&
           edges_[1] == o.edges_[1] && edges_[2] == o.edges_[2];
  }

 private:
  AggregationGrid() = default;

  /// Cache 1/(nominal cell size) per axis for `locate`'s index estimate.
  /// Derived from the leading edge pair, which both constructions space
  /// nominally (only the trailing partition can be shorter).
  void compute_inv_cells() {
    for (int a = 0; a < 3; ++a)
      inv_cell_[a] =
          dims_[a] > 1 ? 1.0 / (edges_[a][1] - edges_[a][0]) : 0.0;
  }

  Vec3i dims_{1, 1, 1};
  /// Per-axis partition boundary coordinates, `dims_[a] + 1` entries each,
  /// strictly increasing.
  std::vector<double> edges_[3];
  Vec3d inv_cell_{0, 0, 0};
};

/// Select the aggregator rank for each of `nparts` partitions from
/// `nranks` ranks, spread uniformly over the rank space (§3.2): partition
/// i is owned by rank `floor(i * nranks / nparts)`. With 16 ranks and 4
/// partitions this yields ranks {0, 4, 8, 12} as in the paper.
/// Precondition: 1 <= nparts <= nranks. The result has no duplicates.
std::vector<int> select_aggregators_uniform(int nranks, int nparts);

/// Ablation alternative: pack aggregators into the low ranks {0, 1, ...}.
/// On machines with dedicated I/O nodes mapped to rank blocks (Mira) this
/// concentrates I/O traffic onto few I/O nodes; see bench/abl_placement.
std::vector<int> select_aggregators_packed(int nranks, int nparts);

}  // namespace spio
