#include "core/partition_factor.hpp"

#include <gtest/gtest.h>

namespace spio {
namespace {

TEST(PartitionFactor, GroupSize) {
  EXPECT_EQ(PartitionFactor(1, 1, 1).group_size(), 1);
  EXPECT_EQ(PartitionFactor(2, 2, 4).group_size(), 16);
  EXPECT_EQ(PartitionFactor(4, 4, 4).group_size(), 64);
}

TEST(PartitionFactor, ToStringMatchesPaperNotation) {
  EXPECT_EQ(PartitionFactor(2, 2, 4).to_string(), "2x2x4");
  EXPECT_EQ(PartitionFactor(1, 1, 1).to_string(), "1x1x1");
}

TEST(PartitionFactor, Validity) {
  EXPECT_TRUE(PartitionFactor(1, 1, 1).valid());
  EXPECT_FALSE(PartitionFactor(0, 1, 1).valid());
  EXPECT_FALSE(PartitionFactor(1, -1, 1).valid());
}

TEST(FileCountLaw, PaperSection31Example) {
  // §3.1: "with 4 × 4 = 16 processes and Px × Py = 2 × 2, the total number
  // of generated files will be (4/2) × (4/2) = 4".
  EXPECT_EQ(file_count({4, 4, 1}, {2, 2, 1}), 4);
}

TEST(FileCountLaw, ExtremesMatchFppAndSharedFile) {
  // (1,1,1) is file-per-process; the full grid is single shared file.
  EXPECT_EQ(file_count({4, 4, 1}, {1, 1, 1}), 16);
  EXPECT_EQ(file_count({4, 4, 1}, {4, 4, 1}), 1);
}

TEST(FileCountLaw, PaperSection4Example) {
  // §4: 64K processes with (2,2,2) produce 8K files.
  EXPECT_EQ(file_count({64, 32, 32}, {2, 2, 2}), 8192);
}

TEST(FileCountLaw, PaperSection52FileSizeExample) {
  // §5.2 discusses 4096 processes aggregated into 128 files of 128 MB
  // (with 32K particles/core = 4 MB/core, 16 GB total). That corresponds
  // to a group size of 32, i.e. factor (2,4,4); the printed "(2, 2, 4)"
  // (group size 16) would give 256 files of 64 MB. We encode the
  // self-consistent arithmetic; see EXPERIMENTS.md.
  EXPECT_EQ(file_count({16, 16, 16}, {2, 4, 4}), 128);
  EXPECT_EQ(file_count({16, 16, 16}, {2, 2, 4}), 256);
}

TEST(FileCountLaw, CeilingForNonDividingFactors) {
  // 5 patches grouped by 2 along x -> 3 partitions (2, 2, 1 patches).
  EXPECT_EQ(file_count({5, 1, 1}, {2, 1, 1}), 3);
  EXPECT_EQ(file_count({5, 3, 1}, {2, 2, 1}), 3 * 2);
}

TEST(FileCountLaw, FactorLargerThanGridClampsToOne) {
  EXPECT_EQ(file_count({2, 2, 2}, {4, 4, 4}), 1);
}

}  // namespace
}  // namespace spio
