#include "obs/query_context.hpp"

#include <atomic>

namespace spio::obs {

namespace {
std::atomic<std::uint64_t> g_next_id{1};
thread_local std::uint64_t t_query_id = 0;
}  // namespace

std::uint64_t next_query_id() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_query_id() { return t_query_id; }

ScopedQueryId::ScopedQueryId(std::uint64_t id) : prev_(t_query_id) {
  t_query_id = id;
}

ScopedQueryId::~ScopedQueryId() { t_query_id = prev_; }

}  // namespace spio::obs
