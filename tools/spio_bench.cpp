/// \file spio_bench.cpp
/// Parameterized write/read benchmark for the spio pipeline on the local
/// machine — this library's h5perf. Writes a synthetic Uintah-style
/// workload with a sweep of partition factors, reporting per-phase times
/// (the real Fig. 6 breakdown at laptop scale), then measures
/// metadata-guided read strong scaling on the best configuration.
///
/// Usage:
///   spio_bench [--ranks N] [--particles P] [--reps R] [--dir path]
///              [--factors f1,f2,...]   (factors like 2x2x1)

#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <mutex>
#include <sstream>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool parse_factor(const std::string& s, PartitionFactor* out) {
  int px = 0, py = 0, pz = 0;
  if (std::sscanf(s.c_str(), "%dx%dx%d", &px, &py, &pz) != 3) return false;
  *out = {px, py, pz};
  return out->valid();
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 16;
  std::uint64_t particles = 20000;
  int reps = 3;
  std::filesystem::path base;
  std::vector<PartitionFactor> factors = {
      {1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}, {4, 2, 2}};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks") ranks = std::atoi(next());
    else if (arg == "--particles") particles = std::strtoull(next(), nullptr, 10);
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--dir") base = next();
    else if (arg == "--factors") {
      factors.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        PartitionFactor f;
        if (!parse_factor(tok, &f)) {
          std::cerr << "bad factor '" << tok << "'\n";
          return 2;
        }
        factors.push_back(f);
      }
    } else {
      std::cerr << "usage: spio_bench [--ranks N] [--particles P] "
                   "[--reps R] [--dir path] [--factors f1,f2,...]\n";
      return 2;
    }
  }
  if (ranks < 1 || reps < 1 || factors.empty()) {
    std::cerr << "invalid parameters\n";
    return 2;
  }

  TempDir scratch("spio-bench");
  const std::filesystem::path work = base.empty() ? scratch.path() : base;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), ranks);
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(ranks) *
                                    particles *
                                    Schema::uintah().record_size();

  std::cout << "spio_bench: " << ranks << " ranks x " << particles
            << " particles (" << format_bytes(total_bytes)
            << " per write), best of " << reps << " reps\n\n";

  Table wt("write sweep", {"factor", "files", "write (ms)", "GB/s",
                           "agg %", "shuffle %", "file I/O %"});
  PartitionFactor best{1, 1, 1};
  double best_ms = 1e300;
  for (const PartitionFactor f : factors) {
    if (file_count(decomp.grid(), f) > ranks) continue;
    double best_rep = 1e300;
    WriteStats job{};
    for (int rep = 0; rep < reps; ++rep) {
      WriteStats rep_job{};
      std::mutex mu;
      const auto t0 = std::chrono::steady_clock::now();
      simmpi::run(ranks, [&](simmpi::Comm& comm) {
        const auto local = workload::uniform(
            Schema::uintah(), decomp.patch(comm.rank()), particles,
            stream_seed(1000 + rep, static_cast<std::uint64_t>(comm.rank())),
            static_cast<std::uint64_t>(comm.rank()) * particles);
        WriterConfig cfg;
        cfg.dir = work / ("w_" + f.to_string() + "_" + std::to_string(rep));
        cfg.factor = f;
        const WriteStats s = write_dataset(comm, decomp, local, cfg);
        std::lock_guard lk(mu);
        rep_job = WriteStats::max_over(rep_job, s);
      });
      const double ms = seconds_since(t0) * 1e3;
      if (ms < best_rep) {
        best_rep = ms;
        job = rep_job;
      }
    }
    const double t = job.total_seconds();
    wt.row()
        .add(f.to_string())
        .add_int(job.files_written)
        .add_double(best_rep, 1)
        .add_double(throughput_gbs(total_bytes, best_rep / 1e3), 3)
        .add_double(100.0 * (job.meta_exchange_seconds +
                             job.particle_exchange_seconds) /
                        t,
                    1)
        .add_double(100.0 * job.reorder_seconds / t, 1)
        .add_double(100.0 * job.file_io_seconds / t, 1);
    if (best_rep < best_ms) {
      best_ms = best_rep;
      best = f;
    }
  }
  wt.print(std::cout);

  // Read strong scaling on the best configuration's first rep.
  const auto dataset = work / ("w_" + best.to_string() + "_0");
  Table rt("read strong scaling on " + best.to_string() + " dataset",
           {"readers", "read (ms)", "files/reader", "GB/s"});
  for (int readers = 1; readers <= ranks; readers *= 2) {
    double best_rep = 1e300;
    std::uint64_t files = 0;
    for (int rep = 0; rep < reps; ++rep) {
      std::atomic<std::uint64_t> opened{0};
      const auto t0 = std::chrono::steady_clock::now();
      simmpi::run(readers, [&](simmpi::Comm& comm) {
        const Dataset ds = Dataset::open(dataset);
        ReadStats rs;
        ds.query_box(
            reader_tile(ds.metadata().domain, comm.rank(), comm.size()), -1,
            comm.size(), &rs);
        opened += static_cast<std::uint64_t>(rs.files_opened);
      });
      const double ms = seconds_since(t0) * 1e3;
      if (ms < best_rep) {
        best_rep = ms;
        files = opened;
      }
    }
    rt.row()
        .add_int(readers)
        .add_double(best_rep, 1)
        .add_double(static_cast<double>(files) / readers, 1)
        .add_double(throughput_gbs(total_bytes, best_rep / 1e3), 3);
  }
  rt.print(std::cout);
  return 0;
}
