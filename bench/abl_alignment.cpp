/// \file abl_alignment.cpp
/// Ablation: the aligned fast path (§3.3 — each rank ships its whole
/// buffer to one aggregator without inspecting particles) versus the
/// general path (per-particle binning). Measures the real exchange-phase
/// cost of both on this machine; the paper's design point is that
/// aligning the aggregation grid with the simulation grid makes the scan
/// unnecessary for uniform-resolution runs.

#include <chrono>
#include <iostream>
#include <mutex>

#include "bench_env.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

using namespace spio;

int main() {
  spio::bench::init_observability();
  constexpr int kRanks = 16;
  const PatchDecomposition decomp(Box3::unit(), {4, 2, 2});

  Table t("Ablation: aligned fast path vs general per-particle binning "
          "(16 ranks, this machine)",
          {"particles/rank", "path", "meta+exchange (ms)", "total (ms)"});

  for (const std::uint64_t ppr : {10000ull, 50000ull, 200000ull}) {
    for (const bool general : {false, true}) {
      TempDir dir("abl-align");
      WriterConfig cfg;
      cfg.dir = dir.path();
      cfg.factor = {2, 2, 2};
      cfg.force_general_exchange = general;
      WriteStats job{};
      std::mutex mu;
      simmpi::run(kRanks, [&](simmpi::Comm& comm) {
        const auto local = workload::uniform(
            Schema::uintah(), decomp.patch(comm.rank()), ppr,
            stream_seed(3, static_cast<std::uint64_t>(comm.rank())),
            static_cast<std::uint64_t>(comm.rank()) * ppr);
        const WriteStats s = write_dataset(comm, decomp, local, cfg);
        std::lock_guard lk(mu);
        job = WriteStats::max_over(job, s);
      });
      t.row()
          .add_int(static_cast<long long>(ppr))
          .add(general ? "general (binning)" : "aligned (no scan)")
          .add_double((job.meta_exchange_seconds +
                       job.particle_exchange_seconds) *
                          1e3,
                      2)
          .add_double(job.total_seconds() * 1e3, 2);
    }
  }
  t.print(std::cout);
  std::cout << "\nthe aligned path ships whole buffers; the general path "
               "must classify every\nparticle first (the cost the paper's "
               "grid alignment avoids).\n";
  return 0;
}
