/// \file readpath_perf_test.cpp
/// Perf smoke tests for the read engine (ctest label `perf`). Like
/// hotpath_perf_test.cpp the bars are several times below what
/// bench/run_hotpath.sh measures, so they trip only on a genuine
/// re-pessimization. One floor is exact rather than generous: a
/// warm-cache query must not open a single file — that is a semantic
/// property of the buffer cache, not a timing.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simd/kernels.hpp"
#include "simd/position_mirror.hpp"
#include "simd/simd_level.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, seconds_of(fn));
  return best;
}

TEST(ReadpathPerf, WarmCacheQueryOpensZeroFiles) {
  TempDir dir("spio-readperf");
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 8);
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {1, 1, 1};  // one file per patch: the query spans 8 files
  simmpi::run(8, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 2000,
        stream_seed(55, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 2000);
    write_dataset(comm, decomp, local, cfg);
  });

  ReadEngine& eng = ReadEngine::instance();
  const std::uint64_t prev_budget = eng.cache_budget();
  eng.set_cache_budget(256ull << 20);
  eng.clear_cache();

  const Dataset ds = Dataset::open(dir.path());
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
  ds.query_box(box);  // prime

  ReadStats warm;
  const ParticleBuffer out = ds.query_box(box, -1, 1, &warm);
  EXPECT_GT(out.size(), 0u);
  EXPECT_EQ(warm.files_opened, 0) << "warm-cache query touched disk";
  EXPECT_EQ(warm.bytes_read, 0u);
  EXPECT_GT(warm.cache_hits, 0u);

  eng.set_cache_budget(prev_budget);
}

TEST(ReadpathPerf, FusedFilterBoxSustainsTwoMillionParticlesPerSecond) {
  constexpr std::uint64_t kParticles = 500000;
  const auto buf = workload::uniform(Schema::uintah(), Box3::unit(),
                                     kParticles, stream_seed(56, 0), 0);
  const Box3 half({0, 0, 0}, {0.5, 1, 1});

  ParticleBuffer out(Schema::uintah());
  const double s = best_seconds(3, [&] {
    out.clear();
    const auto n =
        read_detail::filter_box(buf.bytes(), buf.schema(), half, out);
    ASSERT_GT(n, 0u);
  });

  const double mpps = static_cast<double>(kParticles) / 1e6 / s;
  EXPECT_GE(mpps, 2.0) << "fused filter_box dropped to " << mpps
                       << " Mparticles/s; the run-copy kernel sustains "
                          "several times this";
}

/// The SIMD floor on 1M Uintah-schema particles. The filter kernel is
/// held to ≥2× over the fused scalar kernel on a scan-bound query (low
/// selectivity, where the predicate — not the run copy — dominates;
/// measured ~6×). Owner binning moves every record regardless of the
/// box, so its ceiling is the memcpy: measured ~2.2–2.5× over fused,
/// floored at 1.5× so only a genuine re-pessimization trips it. The
/// ≥4× bars against the *reference* kernels live in the bench gate
/// (`spio_bench --readpath --compare`). Skipped — loudly — when
/// dispatch is scalar (non-x86 build or `SPIO_SIMD=off`): there is no
/// SIMD path to hold to a floor.
TEST(ReadpathPerf, SimdKernelsBeatFusedScalarFloors) {
  if (simd::active_level() == simd::Level::kScalar) {
    GTEST_SKIP() << "SIMD dispatch is scalar on this host (detected="
                 << simd::level_name(simd::detected_level())
                 << ", active=scalar — SPIO_SIMD cap or non-x86 build); "
                    "no vector floor to enforce";
  }
  constexpr std::uint64_t kParticles = 1000000;
  const Schema schema = Schema::uintah();
  const auto buf = workload::uniform(schema, Box3::unit(), kParticles,
                                     stream_seed(57, 0), 0);
  const auto mirror = PositionMirror::build(
      buf.bytes(), schema.record_size(), schema.offset(0));
  // ~2.7% selectivity: the scan dominates, which is exactly the regime
  // the mirror exists for (a 50% box is copy-bound and kernel-agnostic).
  const Box3 cube({0, 0, 0}, {0.3, 0.3, 0.3});

  ParticleBuffer out(schema);
  const double scalar_s = best_seconds(5, [&] {
    out.clear();
    ASSERT_GT(read_detail::filter_box(buf.bytes(), schema, cube, out), 0u);
  });
  const double simd_s = best_seconds(5, [&] {
    out.clear();
    std::uint64_t kept = 0;
    ASSERT_TRUE(simd::filter_box(*mirror, buf.bytes(), schema.record_size(),
                                 cube, out, &kept));
    ASSERT_GT(kept, 0u);
  });
  EXPECT_GE(scalar_s, 2.0 * simd_s)
      << "simd filter_box (" << simd::level_name(simd::active_level())
      << ") only " << scalar_s / simd_s << "x over fused scalar";

  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 8);
  std::vector<ParticleBuffer> bins(8, ParticleBuffer(schema));
  const auto clear_bins = [&] {
    for (auto& b : bins) b.clear();
  };
  const double bin_scalar_s = best_seconds(5, [&] {
    clear_bins();
    read_detail::bin_by_owner(buf.bytes(), schema, decomp, bins);
  });
  const double bin_simd_s = best_seconds(5, [&] {
    clear_bins();
    ASSERT_TRUE(simd::bin_by_owner(*mirror, buf.bytes(), schema.record_size(),
                                   decomp, bins));
  });
  EXPECT_GE(bin_scalar_s, 1.5 * bin_simd_s)
      << "simd bin_by_owner (" << simd::level_name(simd::active_level())
      << ") only " << bin_scalar_s / bin_simd_s << "x over fused scalar";
}

}  // namespace
}  // namespace spio
