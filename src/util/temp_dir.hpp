#pragma once

/// \file temp_dir.hpp
/// RAII scratch directory used by tests, examples and the functional
/// benchmarks that write real dataset files.

#include <filesystem>
#include <string>

namespace spio {

/// Creates a unique directory under the system temp path on construction
/// and removes it (recursively) on destruction. Move-only.
class TempDir {
 public:
  /// `prefix` is embedded in the directory name to aid debugging.
  explicit TempDir(const std::string& prefix = "spio");
  ~TempDir();

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  /// Convenience: `path() / name`.
  std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

  /// Release ownership: the directory will not be deleted on destruction.
  std::filesystem::path release();

 private:
  std::filesystem::path path_;
};

}  // namespace spio
