# Empty dependencies file for spio_workload.
# This may be replaced when dependencies are built.
