file(REMOVE_RECURSE
  "libspio_faultsim.a"
)
