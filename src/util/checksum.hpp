#pragma once

/// \file checksum.hpp
/// CRC-64/XZ (reflected ECMA-182 polynomial) over byte spans. Used by the
/// writer's rewrite-and-revalidate recovery path and by the optional
/// `checksums.spio` sidecar that lets readers detect silent data-file
/// corruption (bit rot, torn writes that escaped the writer).
///
/// The production implementation is slicing-by-16 (sixteen independent
/// table lookups per pair of 64-bit words, XORed as a tree the CPU can
/// overlap); `crc64_bytewise` keeps the classic one-table form as a
/// differential-testing reference and perf baseline. The streaming
/// entry points (`Crc64`, `crc64_write_file`, `crc64_file`) let the hot
/// write path fold checksumming into the file pass instead of re-scanning
/// whole aggregation buffers.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>

namespace spio {

/// Incremental CRC-64/XZ. Feeding a buffer in any chunking yields the
/// same value as one `crc64` call over the concatenation.
class Crc64 {
 public:
  /// Fold `data` into the running checksum.
  void update(std::span<const std::byte> data);

  /// CRC-64/XZ of every byte fed so far (does not reset the state).
  std::uint64_t value() const { return ~crc_; }

  /// Restart as if freshly constructed.
  void reset() { crc_ = ~0ULL; }

 private:
  std::uint64_t crc_ = ~0ULL;
};

/// CRC-64/XZ of `data`. Matches the widely-used xz/liblzma parameters
/// (poly 0x42F0E1EBA9EA3693 reflected, init/xorout ~0), so values can be
/// cross-checked with external tooling.
std::uint64_t crc64(std::span<const std::byte> data);

/// Byte-at-a-time reference implementation of the same CRC. Slower than
/// `crc64`; exists so tests can cross-check the sliced tables and so the
/// perf baseline can report the speedup against it.
std::uint64_t crc64_bytewise(std::span<const std::byte> data);

/// Write `bytes` to `path` (replacing any existing file) while computing
/// their CRC-64 in the same pass over the buffer. Returns the checksum.
/// Throws `IoError` on open/write failure.
std::uint64_t crc64_write_file(const std::filesystem::path& path,
                               std::span<const std::byte> bytes);

/// CRC-64 of a file's contents, streamed in fixed-size chunks without
/// materializing the file in memory. Throws `IoError` if the file cannot
/// be opened or read.
std::uint64_t crc64_file(const std::filesystem::path& path);

}  // namespace spio
