#pragma once

/// \file zone_map.hpp
/// Per-file, per-LOD-level field statistics ("zone maps"): the min/max of
/// every field component over each LOD level of a data file, computed by
/// the aggregators right after the LOD shuffle and persisted as the
/// `zones.spio` sidecar (docs/FORMAT.md). The planner uses them to skip
/// whole files, and LOD tails within files, that provably contain no
/// records matching a range filter or query box.
///
/// Zone z of an N-record file covers records
///   [zone_begin(lod, z, N), zone_begin(lod, z + 1, N))
/// — the single-reader LOD prefix law applied file-locally, which every
/// reader can recompute from the metadata alone. `zone_file_count` is
/// `lod_level_count(lod, 1, N)`.
///
/// A zone component that contains any NaN is stored as [-inf, +inf] so it
/// conservatively matches every interval; pruning therefore never drops a
/// record a filter kernel would pass.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/metadata.hpp"

namespace spio {

/// Number of zones of an `n`-record file (non-empty LOD levels for one
/// reader). 0 when n == 0.
std::uint32_t zone_file_count(const LodParams& lod, std::uint64_t n);

/// First record of zone `z` of an `n`-record file; `zone_begin(lod,
/// zone_file_count(lod, n), n) == n`.
std::uint64_t zone_begin(const LodParams& lod, std::uint32_t z,
                         std::uint64_t n);

/// One file's zone table: `zones[z * range_count + c]` is the closed
/// min/max of component `c` over zone `z` (zone-major).
struct FileZones {
  std::uint32_t aggregator_rank = 0;
  std::uint64_t particle_count = 0;
  std::vector<FieldRange> zones;

  bool operator==(const FileZones&) const = default;
};

/// The `zones.spio` sidecar: zone tables for every data file of one
/// dataset, sorted by aggregator rank. The byte stream carries a CRC-64
/// trailer; `load` refuses torn or corrupted sidecars with `FormatError`
/// so the planner can fall back to zone-free planning.
struct ZoneMapTable {
  static constexpr std::uint32_t kMagic = 0x4D5A5053;  // "SPZM"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr const char* kFileName = "zones.spio";

  std::size_t range_count = 0;
  LodParams lod;
  std::vector<FileZones> files;  // sorted by aggregator_rank

  bool operator==(const ZoneMapTable&) const = default;

  /// Zone table for the file written by `aggregator_rank`, or nullptr.
  const FileZones* find(std::uint32_t aggregator_rank) const;

  std::vector<std::byte> serialize() const;
  static ZoneMapTable deserialize(std::span<const std::byte> bytes);

  void save(const std::filesystem::path& dir) const;
  static ZoneMapTable load(const std::filesystem::path& dir);
  static bool present(const std::filesystem::path& dir);
};

/// One record-major pass over a LOD-ordered buffer: the zone-major
/// min/max table of every field component. Empty buffer -> empty table.
std::vector<FieldRange> compute_zone_maps(const ParticleBuffer& buf,
                                          const LodParams& lod);

/// Union of all zones per component — the file-level field ranges. Unlike
/// `compute_field_ranges` this is NaN-aware: poisoned zones widen the
/// union to [-inf, +inf] instead of dropping the values.
std::vector<FieldRange> zone_union(const std::vector<FieldRange>& zones,
                                   std::size_t range_count);

/// True when the sidecar structurally matches the dataset metadata: same
/// range count and LOD parameters, and a zone table with the right
/// particle count for every file. A false return means the sidecar
/// belongs to a different (e.g. partially rewritten) dataset and must not
/// be used for pruning.
bool zones_consistent(const ZoneMapTable& table, const DatasetMetadata& meta);

}  // namespace spio
