#pragma once

/// \file hooks.hpp
/// Transport interposition points for the simmpi runtime.
///
/// A `CommHooks` implementation can observe every point-to-point send and
/// decide its fate — deliver normally, drop it, deliver it twice, or delay
/// it past later traffic. The production transport installs no hooks: the
/// only cost on that path is one null-pointer branch per send. The
/// fault-injection layer (`spio::faultsim`) is the intended implementer;
/// it scripts deterministic message faults for the chaos test harness.
///
/// Collectives are not hooked: they move through the collective arena,
/// whose all-or-nothing semantics make per-message faults meaningless.
/// Rank death during a collective is modeled at a higher layer (a phase
/// hook throwing before the collective entry).

#include <cstddef>

namespace simmpi {

/// Fate of one point-to-point message, chosen by the installed hooks.
enum class SendAction {
  kDeliver,    // normal delivery
  kDrop,       // silently discard (models message loss)
  kDuplicate,  // deliver two copies (models retransmission races)
  kDelay,      // hold back; delivered after the sender's next send or at
               // its next collective (models out-of-order arrival)
};

/// Interface consulted by `Comm::send_bytes` when installed via
/// `RunOptions`. Implementations must be thread-safe across ranks; calls
/// from one rank are sequential.
class CommHooks {
 public:
  virtual ~CommHooks() = default;

  /// Decide the fate of one message about to be sent from `src` to `dst`.
  virtual SendAction on_send(int src, int dst, int tag,
                             std::size_t bytes) = 0;
};

}  // namespace simmpi
