#include "core/kd_partition.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

std::vector<RankExtent> uniform_extents(const Box3& region, int n,
                                        std::uint64_t count_each) {
  // n ranks side by side along x, equal density.
  std::vector<RankExtent> ex;
  const double w = region.size().x / n;
  for (int i = 0; i < n; ++i) {
    Box3 b = region;
    b.lo.x = region.lo.x + i * w;
    b.hi.x = region.lo.x + (i + 1) * w;
    ex.push_back({b, count_each});
  }
  return ex;
}

TEST(KdPartitioning, SingleLeafIsTheRegion) {
  const auto kd =
      KdPartitioning::build(Box3::unit(), uniform_extents(Box3::unit(), 4, 10),
                            1);
  EXPECT_EQ(kd.partition_count(), 1);
  EXPECT_EQ(kd.partition_box(0), Box3::unit());
  EXPECT_EQ(kd.region(), Box3::unit());
}

TEST(KdPartitioning, LeavesAreDisjointAndCoverRegion) {
  const auto kd = KdPartitioning::build(
      Box3::unit(), uniform_extents(Box3::unit(), 8, 100), 7);
  EXPECT_EQ(kd.partition_count(), 7);
  double vol = 0;
  for (int a = 0; a < kd.partition_count(); ++a) {
    vol += kd.partition_box(a).volume();
    for (int b = a + 1; b < kd.partition_count(); ++b)
      EXPECT_FALSE(kd.partition_box(a).overlaps(kd.partition_box(b)));
  }
  EXPECT_NEAR(vol, 1.0, 1e-9);
}

TEST(KdPartitioning, PointLocationConsistentWithBoxes) {
  const auto kd = KdPartitioning::build(
      Box3({-1, -1, -1}, {1, 1, 1}),
      uniform_extents(Box3({-1, -1, -1}, {1, 1, 1}), 6, 50), 9);
  Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Vec3d p{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const int idx = kd.partition_of_point(p);
    EXPECT_TRUE(kd.partition_box(idx).contains_closed(p)) << p;
  }
  // Boundary corners clamp into some leaf.
  EXPECT_GE(kd.partition_of_point({5, 5, 5}), 0);
  EXPECT_GE(kd.partition_of_point({-5, -5, -5}), 0);
}

TEST(KdPartitioning, BalancesUniformLoad) {
  const auto kd = KdPartitioning::build(
      Box3::unit(), uniform_extents(Box3::unit(), 16, 1000), 8);
  double mn = 1e300, mx = 0;
  for (int i = 0; i < kd.partition_count(); ++i) {
    mn = std::min(mn, kd.leaf_load(i));
    mx = std::max(mx, kd.leaf_load(i));
  }
  EXPECT_EQ(kd.partition_count(), 8);
  EXPECT_LT(mx / mn, 1.5);  // near-even loads for a uniform distribution
}

TEST(KdPartitioning, RefinesDenseRegions) {
  // 90% of particles in the left 10% of the domain: most partitions must
  // end up in that sliver.
  std::vector<RankExtent> ex;
  ex.push_back({Box3({0, 0, 0}, {0.1, 1, 1}), 9000});
  ex.push_back({Box3({0.1, 0, 0}, {1, 1, 1}), 1000});
  const auto kd = KdPartitioning::build(Box3::unit(), ex, 8);
  int in_sliver = 0;
  for (int i = 0; i < kd.partition_count(); ++i) {
    if (kd.partition_box(i).hi.x <= 0.1 + 1e-9) ++in_sliver;
  }
  EXPECT_GE(in_sliver, 4);
  // And the loads are far more even than an 8-way uniform x-split, whose
  // first cell would hold ~91% of everything.
  double mx = 0;
  for (int i = 0; i < kd.partition_count(); ++i)
    mx = std::max(mx, kd.leaf_load(i));
  EXPECT_LT(mx, 0.35 * 10000);
}

TEST(KdPartitioning, HandlesDegenerateExtents) {
  std::vector<RankExtent> ex;
  const Vec3d pt{0.5, 0.5, 0.5};
  ex.push_back({Box3(pt, pt), 100});  // zero-volume extent
  ex.push_back({Box3({0, 0, 0}, {1, 1, 1}), 100});
  const auto kd = KdPartitioning::build(Box3::unit(), ex, 4);
  EXPECT_EQ(kd.partition_count(), 4);
  // Total load is conserved (the point mass lands in exactly one leaf).
  double total = 0;
  for (int i = 0; i < kd.partition_count(); ++i) total += kd.leaf_load(i);
  EXPECT_NEAR(total, 200.0, 1.0);
}

TEST(KdPartitioning, RejectsInvalidInput) {
  EXPECT_THROW(KdPartitioning::build(Box3::empty(), {}, 2), ConfigError);
  EXPECT_THROW(KdPartitioning::build(Box3::unit(), {}, 0), ConfigError);
}

// ---- end-to-end: refined adaptive writes ----

TEST(AdaptiveRefined, RoundTripOnClusteredData) {
  constexpr int kRanks = 16;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  TempDir dir("spio-kd");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.factor = {2, 2, 1};
  cfg.adaptive = true;
  cfg.adaptive_refine = true;
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    // Heavy cluster in rank 0's patch, light elsewhere.
    const std::uint64_t n = comm.rank() == 0 ? 4000 : 250;
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), n,
        stream_seed(8, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 10000);
    write_dataset(comm, decomp, local, cfg);
  });

  const Dataset ds = Dataset::open(dir.path());
  EXPECT_EQ(ds.metadata().total_particles, 4000u + 15u * 250u);
  // Everything present exactly once.
  const auto idf = Schema::uintah().index_of("id");
  std::set<double> ids;
  const auto all = ds.query_box(Box3::unit());
  for (std::size_t i = 0; i < all.size(); ++i)
    ids.insert(all.get_f64(i, idf));
  EXPECT_EQ(ids.size(), all.size());
  EXPECT_EQ(all.size(), ds.metadata().total_particles);
  // File bounds disjoint.
  for (int a = 0; a < ds.file_count(); ++a)
    for (int b = a + 1; b < ds.file_count(); ++b)
      EXPECT_FALSE(
          ds.metadata().files[static_cast<std::size_t>(a)].bounds.overlaps(
              ds.metadata().files[static_cast<std::size_t>(b)].bounds));
}

TEST(AdaptiveRefined, BalancesFilesBetterThanUniformAdaptive) {
  constexpr int kRanks = 16;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});

  auto imbalance = [&](bool refine) {
    TempDir dir("spio-kd-bal");
    WriterConfig cfg;
    cfg.dir = dir.path();
    cfg.factor = {2, 2, 1};
    cfg.adaptive = true;
    cfg.adaptive_refine = refine;
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      // Density falls off sharply with the rank id (clustered corner),
      // the same power-law skew as bench/abl_adaptive_refine.
      const auto n = static_cast<std::uint64_t>(
          6400.0 / ((1.0 + comm.rank()) * (1.0 + comm.rank())));
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), n,
          stream_seed(8, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * 10000);
      write_dataset(comm, decomp, local, cfg);
    });
    const Dataset ds = Dataset::open(dir.path());
    std::uint64_t mn = ~0ull, mx = 0;
    for (const auto& f : ds.metadata().files) {
      mn = std::min(mn, f.particle_count);
      mx = std::max(mx, f.particle_count);
    }
    return static_cast<double>(mx) /
           static_cast<double>(std::max<std::uint64_t>(mn, 1));
  };

  const double uniform_ratio = imbalance(false);
  const double refined_ratio = imbalance(true);
  EXPECT_LT(refined_ratio, uniform_ratio);
  EXPECT_LT(refined_ratio, 4.0);
}

TEST(AdaptiveRefined, PlanUsesKdPartitioning) {
  const PatchDecomposition decomp(Box3::unit(), {4, 1, 1});
  std::vector<RankExtent> ex;
  for (int r = 0; r < 4; ++r)
    ex.push_back({decomp.patch(r), r == 0 ? 1000u : 10u});
  const auto plan = AggregationPlan::adaptive_refined(
      decomp, {2, 1, 1}, AggregatorPlacement::kUniform, ex);
  EXPECT_TRUE(plan.adaptive_mode());
  EXPECT_FALSE(plan.aligned());
  EXPECT_EQ(plan.partition_count(), 2);
  // The split leans toward the dense rank-0 patch, not the midpoint.
  EXPECT_LT(plan.partitioning().partition_box(0).hi.x, 0.5);
}

}  // namespace
}  // namespace spio
