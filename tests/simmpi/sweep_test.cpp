#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/reduce_ops.hpp"
#include "simmpi/runtime.hpp"

namespace simmpi {
namespace {

/// Every collective exercised at a sweep of rank counts, including
/// awkward ones (primes, powers of two, 1).
class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, BarrierCompletes) {
  run(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(RankSweep, AllreduceSumMatchesClosedForm) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const long long sum = comm.allreduce<long long>(comm.rank(), op::sum);
    EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
  });
}

TEST_P(RankSweep, BcastFromLastRank) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const int root = n - 1;
    const double v = comm.bcast(comm.rank() == root ? 3.25 : -1.0, root);
    EXPECT_EQ(v, 3.25);
  });
}

TEST_P(RankSweep, AllgatherOrdered) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * comm.rank());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(all[r], r * r);
  });
}

TEST_P(RankSweep, ExscanPrefix) {
  run(GetParam(), [](Comm& comm) {
    const std::uint64_t prefix =
        comm.exscan<std::uint64_t>(1, op::sum, 0);
    EXPECT_EQ(prefix, static_cast<std::uint64_t>(comm.rank()));
  });
}

TEST_P(RankSweep, AlltoallvTransposesTags) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    std::vector<std::vector<int>> send_to(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      send_to[static_cast<std::size_t>(d)] = {comm.rank() * 1000 + d};
    const auto recv = comm.alltoallv(send_to);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)][0],
                s * 1000 + comm.rank());
    }
  });
}

TEST_P(RankSweep, RingExchange) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const int right = (comm.rank() + 1) % n;
    const int left = (comm.rank() + n - 1) % n;
    comm.send_value<int>(right, 0, comm.rank());
    EXPECT_EQ(comm.recv_value<int>(left, 0), left);
  });
}

TEST_P(RankSweep, SplitIntoHalves) {
  const int n = GetParam();
  if (n < 2) return;
  run(n, [&](Comm& comm) {
    const int color = comm.rank() < n / 2 ? 0 : 1;
    Comm sub = comm.split(color, comm.rank());
    const int expect = color == 0 ? n / 2 : n - n / 2;
    EXPECT_EQ(sub.size(), expect);
    EXPECT_EQ(sub.allreduce(1, op::sum), expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Counts, RankSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 33, 64),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

/// Randomized point-to-point traffic with full verification: every rank
/// sends a deterministic pseudo-random set of messages; receivers check
/// payloads against the same generator.
TEST(P2pFuzz, RandomTrafficPatternsVerify) {
  constexpr int kRanks = 12;
  constexpr int kRounds = 30;
  run(kRanks, [&](Comm& comm) {
    // Deterministic plan shared by all ranks: round r, sender s sends to
    // ((s + r*7 + 1) % n) a vector of (s + r) % 9 ints of value s*100+r.
    for (int round = 0; round < kRounds; ++round) {
      const int dst = (comm.rank() + round * 7 + 1) % kRanks;
      std::vector<int> payload(
          static_cast<std::size_t>((comm.rank() + round) % 9),
          comm.rank() * 100 + round);
      comm.send<int>(dst, round, payload);
    }
    for (int round = 0; round < kRounds; ++round) {
      // Who sends to me this round? s with (s + round*7 + 1) % n == me.
      const int src =
          ((comm.rank() - round * 7 - 1) % kRanks + kRanks) % kRanks;
      const auto got = comm.recv<int>(src, round);
      ASSERT_EQ(got.size(),
                static_cast<std::size_t>((src + round) % 9));
      for (int v : got) EXPECT_EQ(v, src * 100 + round);
    }
  });
}

TEST(P2pFuzz, InterleavedTagsAndSources) {
  constexpr int kRanks = 6;
  run(kRanks, [&](Comm& comm) {
    if (comm.rank() == 0) {
      // Everyone floods rank 0 with tagged messages; rank 0 drains them
      // in reverse order of both tag and source — matching must pick the
      // right message regardless of arrival order.
      for (int tag = 7; tag >= 0; --tag)
        for (int src = kRanks - 1; src >= 1; --src)
          EXPECT_EQ(comm.recv_value<int>(src, tag), src * 10 + tag);
    } else {
      for (int tag = 0; tag < 8; ++tag)
        comm.send_value<int>(0, tag, comm.rank() * 10 + tag);
    }
  });
}

TEST(Stress, TwoHundredRanksAllreduce) {
  constexpr int kRanks = 200;
  run(kRanks, [&](Comm& comm) {
    const long long sum = comm.allreduce<long long>(1, op::sum);
    EXPECT_EQ(sum, kRanks);
  });
}

TEST(Stress, ManyConcurrentSubCommunicators) {
  constexpr int kRanks = 48;
  run(kRanks, [&](Comm& comm) {
    for (int groups : {2, 3, 4, 6, 8}) {
      Comm sub = comm.split(comm.rank() % groups, comm.rank());
      const int members = kRanks / groups;
      EXPECT_EQ(sub.size(), members);
      // Chain of p2p inside the subgroup.
      if (sub.rank() + 1 < sub.size()) {
        sub.send_value<int>(sub.rank() + 1, 0, sub.rank());
      }
      if (sub.rank() > 0) {
        EXPECT_EQ(sub.recv_value<int>(sub.rank() - 1, 0), sub.rank() - 1);
      }
    }
  });
}

}  // namespace
}  // namespace simmpi
