# Empty dependencies file for spio_faultsim.
# This may be replaced when dependencies are built.
