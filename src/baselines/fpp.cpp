#include "baselines/fpp.hpp"

#include <numeric>

#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace spio::baselines {

namespace {
constexpr std::uint32_t kManifestMagic = 0x50504653;  // "SFPP"
constexpr const char* kManifestName = "fpp_manifest.bin";

std::string rank_file_name(int rank) {
  return "rank_" + std::to_string(rank) + ".bin";
}
}  // namespace

void fpp_write(simmpi::Comm& comm, const ParticleBuffer& local,
               const std::filesystem::path& dir) {
  obs::ScopedSpan span("baseline.fpp.write", "baseline");
  if (comm.rank() == 0) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    SPIO_CHECK(!ec, IoError,
               "cannot create '" << dir.string() << "': " << ec.message());
  }
  comm.barrier();

  write_file(dir / rank_file_name(comm.rank()), local.bytes());

  const auto counts = comm.gather<std::uint64_t>(local.size(), 0);
  if (comm.rank() == 0) {
    BinaryWriter w;
    w.write<std::uint32_t>(kManifestMagic);
    local.schema().serialize(w);
    w.write_vector(counts);
    write_file(dir / kManifestName, w.bytes());
  }
  comm.barrier();
}

FppDataset FppDataset::open(const std::filesystem::path& dir) {
  const auto bytes = read_file(dir / kManifestName);
  BinaryReader r(bytes);
  SPIO_CHECK(r.read<std::uint32_t>() == kManifestMagic, FormatError,
             "not an FPP manifest");
  Schema schema = Schema::deserialize(r);
  auto counts = r.read_vector<std::uint64_t>();
  SPIO_CHECK(r.at_end(), FormatError, "trailing bytes in FPP manifest");
  return FppDataset(dir, std::move(schema), std::move(counts));
}

std::uint64_t FppDataset::total_particles() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

ParticleBuffer FppDataset::read_rank_file(int rank, ReadStats* stats) const {
  SPIO_EXPECTS(rank >= 0 && rank < file_count());
  const auto path = dir_ / rank_file_name(rank);
  const std::uint64_t expect =
      counts_[static_cast<std::size_t>(rank)] * schema_.record_size();
  SPIO_CHECK(file_size_bytes(path) == expect, FormatError,
             "FPP rank file " << rank << " truncated");
  ParticleBuffer buf(schema_);
  buf.adopt_bytes(read_file(path));
  if (stats) {
    stats->files_opened += 1;
    stats->bytes_read += expect;
    stats->particles_scanned += buf.size();
  }
  return buf;
}

ParticleBuffer FppDataset::query_box(const Box3& box, ReadStats* stats) const {
  obs::ScopedSpan span("baseline.fpp.query_box", "baseline");
  ParticleBuffer out(schema_);
  for (int r = 0; r < file_count(); ++r) {
    const ParticleBuffer buf = read_rank_file(r, stats);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (box.contains(buf.position(i))) {
        out.append_from(buf, i);
        if (stats) stats->particles_returned += 1;
      }
    }
  }
  return out;
}

}  // namespace spio::baselines
