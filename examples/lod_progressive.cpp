/// \file lod_progressive.cpp
/// Progressive visualization-style reads (paper §4, Fig. 9): open a
/// dataset, stream LOD levels one at a time, and refine an ASCII density
/// rendering as data arrives — the pattern an interactive viewer uses to
/// show a representative subset immediately and refine in the background.
///
/// Usage: lod_progressive [output-dir]   (default: ./lod_demo)

#include <iostream>
#include <vector>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

/// Render a top-down (x-y) density view of the particles seen so far.
void render(const ParticleBuffer& buf, const Box3& domain,
            const std::string& caption) {
  constexpr int kW = 56, kH = 14;
  std::vector<int> bins(kW * kH, 0);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const Vec3d rel = (buf.position(i) - domain.lo) / domain.size();
    const int x = std::min(kW - 1, static_cast<int>(rel.x * kW));
    const int y = std::min(kH - 1, static_cast<int>(rel.y * kH));
    ++bins[static_cast<std::size_t>(y * kW + x)];
  }
  int peak = 1;
  for (int b : bins) peak = std::max(peak, b);
  static const char shades[] = " .:-=+*#%@";
  std::cout << caption << "\n+" << std::string(kW, '-') << "+\n";
  for (int y = kH - 1; y >= 0; --y) {
    std::cout << '|';
    for (int x = 0; x < kW; ++x) {
      const double s =
          static_cast<double>(bins[static_cast<std::size_t>(y * kW + x)]) /
          peak;
      const auto idx = static_cast<std::size_t>(s * (sizeof(shades) - 2));
      std::cout << shades[std::min<std::size_t>(idx, sizeof(shades) - 2)];
    }
    std::cout << "|\n";
  }
  std::cout << '+' << std::string(kW, '-') << "+\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "lod_demo";

  // Write a clustered dataset (galaxy-ish blobs) with LOD ordering.
  constexpr int kRanks = 16;
  constexpr std::uint64_t kPerRank = 30000;
  const PatchDecomposition decomp(Box3::unit(), {4, 4, 1});
  std::cout << "writing " << kRanks * kPerRank
            << " clustered particles ...\n";
  simmpi::run(kRanks, [&](simmpi::Comm& comm) {
    const auto local = workload::gaussian_clusters(
        Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
        /*clusters=*/2, /*sigma_frac=*/0.12,
        stream_seed(3033, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * kPerRank);
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {2, 2, 1};
    cfg.lod = {64, 2.0};
    write_dataset(comm, decomp, local, cfg);
  });

  // Progressive refinement: read level after level, appending. Each
  // read_data_file(fi, L) prefix *contains* the previous one, so we only
  // fetch the delta bytes each round in a real viewer; here we re-read
  // the prefix for simplicity and show cumulative cost.
  const Dataset ds = Dataset::open(dir);
  const int levels = ds.level_count(1);
  std::cout << "dataset has " << ds.metadata().total_particles
            << " particles in " << ds.file_count() << " files, " << levels
            << " LOD levels (P=" << ds.metadata().lod.P
            << ", S=" << ds.metadata().lod.S << ")\n\n";

  for (const int upto : {2, levels / 2, levels}) {
    ParticleBuffer view(ds.metadata().schema);
    ReadStats rs;
    for (int fi = 0; fi < ds.file_count(); ++fi) {
      const ParticleBuffer part = ds.read_data_file(fi, upto, 1, &rs);
      view.append_bytes(part.bytes());
    }
    render(view, ds.metadata().domain,
           "levels 0.." + std::to_string(upto - 1) + ": " +
               std::to_string(view.size()) + " particles, " +
               format_bytes(rs.bytes_read) + " read");
  }
  std::cout << "the coarse views already show every cluster; refinement "
               "only sharpens them.\n";
  return 0;
}
