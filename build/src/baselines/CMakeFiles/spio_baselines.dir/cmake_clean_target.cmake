file(REMOVE_RECURSE
  "libspio_baselines.a"
)
