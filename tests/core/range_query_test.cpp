#include <gtest/gtest.h>

#include <set>

#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simmpi/runtime.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Attribute range queries via the §3.5 metadata extension: per-file
/// min/max of every field component, used to prune files before opening
/// them.
class RangeQuery : public ::testing::Test {
 protected:
  static constexpr int kRanks = 8;
  static constexpr std::uint64_t kPerRank = 400;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-range");
    const PatchDecomposition decomp(Box3({0, 0, 0}, {8, 1, 1}), {8, 1, 1});
    WriterConfig cfg;
    cfg.dir = dir_->path();
    cfg.factor = {1, 1, 1};  // one file per rank -> 8 files along x
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      ParticleBuffer local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(21, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      // Make density disjoint per rank: rank r's densities lie in
      // [1000*r, 1000*r + 500], so range pruning can isolate files.
      const auto density = local.schema().index_of("density");
      Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 99);
      for (std::size_t i = 0; i < local.size(); ++i) {
        local.set_f64(i, density, 0,
                      1000.0 * comm.rank() + 500.0 * rng.uniform());
      }
      write_dataset(comm, decomp, local, cfg);
    });
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static TempDir* dir_;
};

TempDir* RangeQuery::dir_ = nullptr;

TEST_F(RangeQuery, MetadataRecordsPerFileRanges) {
  const Dataset ds = Dataset::open(dir_->path());
  ASSERT_TRUE(ds.metadata().has_field_ranges);
  const auto di = ds.metadata().range_index(
      ds.metadata().schema.index_of("density"), 0);
  for (const auto& f : ds.metadata().files) {
    ASSERT_EQ(f.field_ranges.size(), ds.metadata().range_count());
    const double base = 1000.0 * f.partition_id;
    EXPECT_GE(f.field_ranges[di].min, base);
    EXPECT_LE(f.field_ranges[di].max, base + 500.0);
  }
}

TEST_F(RangeQuery, PositionRangesMatchBounds) {
  const Dataset ds = Dataset::open(dir_->path());
  for (const auto& f : ds.metadata().files) {
    const auto xi = ds.metadata().range_index(0, 0);
    EXPECT_GE(f.field_ranges[xi].min, f.bounds.lo.x);
    EXPECT_LE(f.field_ranges[xi].max, f.bounds.hi.x);
  }
}

TEST_F(RangeQuery, RangePruningSkipsFiles) {
  const Dataset ds = Dataset::open(dir_->path());
  const auto density = ds.metadata().schema.index_of("density");
  // Density in [3100, 3400]: only rank 3's file can match.
  const Dataset::RangeFilter rf{density, 0, 3100.0, 3400.0};
  const auto hits =
      ds.files_matching(ds.metadata().domain, std::span(&rf, 1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(ds.metadata().files[static_cast<std::size_t>(hits[0])]
                .partition_id,
            3u);

  ReadStats rs;
  const auto out =
      ds.query(ds.metadata().domain, std::span(&rf, 1), -1, 1, &rs);
  EXPECT_EQ(rs.files_opened, 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double v = out.get_f64(i, density);
    EXPECT_GE(v, 3100.0);
    EXPECT_LE(v, 3400.0);
  }
  EXPECT_GT(out.size(), 0u);
}

TEST_F(RangeQuery, MatchesBruteForce) {
  const Dataset ds = Dataset::open(dir_->path());
  const auto density = ds.metadata().schema.index_of("density");
  const auto idf = ds.metadata().schema.index_of("id");
  const Dataset::RangeFilter rf{density, 0, 2200.0, 5300.0};
  const Box3 box({1.5, 0, 0}, {6.5, 1, 1});

  const auto fast = ds.query(box, std::span(&rf, 1));
  // Brute force: read everything, filter by both predicates.
  const auto all = ds.query_box_scan_all(ds.metadata().domain);
  std::set<double> expect;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const double v = all.get_f64(i, density);
    if (box.contains(all.position(i)) && v >= 2200.0 && v <= 5300.0)
      expect.insert(all.get_f64(i, idf));
  }
  std::set<double> got;
  for (std::size_t i = 0; i < fast.size(); ++i)
    got.insert(fast.get_f64(i, idf));
  EXPECT_EQ(got, expect);
  EXPECT_FALSE(got.empty());
}

TEST_F(RangeQuery, ConjunctionOfFilters) {
  const Dataset ds = Dataset::open(dir_->path());
  const auto& schema = ds.metadata().schema;
  const Dataset::RangeFilter filters[] = {
      {schema.index_of("density"), 0, 0.0, 2400.0},   // ranks 0..2
      {schema.index_of("type"), 0, 1.0, 3.0},         // f32 field filter
  };
  const auto out = ds.query(ds.metadata().domain, filters);
  ASSERT_GT(out.size(), 0u);
  const auto density = schema.index_of("density");
  const auto type = schema.index_of("type");
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(out.get_f64(i, density), 2400.0);
    EXPECT_GE(out.get_f32(i, type), 1.0f);
    EXPECT_LE(out.get_f32(i, type), 3.0f);
  }
}

TEST_F(RangeQuery, EmptyRangeMatchesNothingWithoutOpens) {
  const Dataset ds = Dataset::open(dir_->path());
  const auto density = ds.metadata().schema.index_of("density");
  const Dataset::RangeFilter rf{density, 0, 1e6, 2e6};
  ReadStats rs;
  const auto out =
      ds.query(ds.metadata().domain, std::span(&rf, 1), -1, 1, &rs);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(rs.files_opened, 0);
}

TEST_F(RangeQuery, InvalidFiltersRejected) {
  const Dataset ds = Dataset::open(dir_->path());
  const Dataset::RangeFilter bad_field{99, 0, 0, 1};
  EXPECT_THROW(ds.query(ds.metadata().domain, std::span(&bad_field, 1)),
               ConfigError);
  const Dataset::RangeFilter bad_comp{0, 7, 0, 1};
  EXPECT_THROW(ds.query(ds.metadata().domain, std::span(&bad_comp, 1)),
               ConfigError);
  const Dataset::RangeFilter inverted{0, 0, 2, 1};
  EXPECT_THROW(ds.query(ds.metadata().domain, std::span(&inverted, 1)),
               ConfigError);
}

TEST(RangeQueryNoRanges, DatasetWithoutRangesStillFiltersExactly) {
  const PatchDecomposition decomp(Box3::unit(), {2, 1, 1});
  TempDir dir("spio-noranges");
  WriterConfig cfg;
  cfg.dir = dir.path();
  cfg.write_field_ranges = false;
  simmpi::run(2, [&](simmpi::Comm& comm) {
    const auto local = workload::uniform(
        Schema::uintah(), decomp.patch(comm.rank()), 200,
        stream_seed(4, static_cast<std::uint64_t>(comm.rank())),
        static_cast<std::uint64_t>(comm.rank()) * 200);
    write_dataset(comm, decomp, local, cfg);
  });
  const Dataset ds = Dataset::open(dir.path());
  EXPECT_FALSE(ds.metadata().has_field_ranges);
  const auto density = ds.metadata().schema.index_of("density");
  const Dataset::RangeFilter rf{density, 0, 0.0, 1000.0};
  ReadStats rs;
  const auto out =
      ds.query(ds.metadata().domain, std::span(&rf, 1), -1, 1, &rs);
  // No pruning possible: every file is opened, but filtering is exact.
  EXPECT_EQ(rs.files_opened, 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_LE(out.get_f64(i, density), 1000.0);
}

}  // namespace
}  // namespace spio
