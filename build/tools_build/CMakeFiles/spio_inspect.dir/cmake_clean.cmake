file(REMOVE_RECURSE
  "../tools/spio_inspect"
  "../tools/spio_inspect.pdb"
  "CMakeFiles/spio_inspect.dir/spio_inspect.cpp.o"
  "CMakeFiles/spio_inspect.dir/spio_inspect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spio_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
