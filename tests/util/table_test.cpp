#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spio {
namespace {

TEST(Table, CellsStoredByRowAndColumn) {
  Table t("demo", {"a", "b"});
  t.row().add_int(1).add_double(2.5, 1);
  t.row().add("x").add("y");
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.cell(0, 0), "1");
  EXPECT_EQ(t.cell(0, 1), "2.5");
  EXPECT_EQ(t.cell(1, 1), "y");
}

TEST(Table, PrintContainsTitleHeaderAndData) {
  Table t("Figure 5 (Mira)", {"procs", "GB/s"});
  t.row().add_int(512).add_double(1.25, 2);
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("Figure 5 (Mira)"), std::string::npos);
  EXPECT_NE(s.find("procs"), std::string::npos);
  EXPECT_NE(s.find("512"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t("series", {"x", "y"});
  t.row().add_int(1).add_int(2);
  t.row().add_int(3).add_int(4);
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "# series\nx,y\n1,2\n3,4\n");
}

TEST(Table, SciFormatting) {
  Table t("sci", {"v"});
  t.row().add_sci(123456789.0, 3);
  EXPECT_EQ(t.cell(0, 0), "1.23e+08");
}

TEST(Table, ColumnsAlignForVaryingWidths) {
  Table t("align", {"name", "value"});
  t.row().add("a").add_int(1);
  t.row().add("longer-name").add_int(22);
  std::ostringstream oss;
  t.print(oss);
  // Each printed data line must place the second column at the same offset.
  std::istringstream in(oss.str());
  std::string line;
  std::getline(in, line);  // title
  std::getline(in, line);  // header
  const auto header_pos = line.find("value");
  std::getline(in, line);  // rule
  std::getline(in, line);  // row 1
  EXPECT_EQ(line.find('1'), header_pos);
}

}  // namespace
}  // namespace spio
