# Empty compiler generated dependencies file for micro_shuffle.
# This may be replaced when dependencies are built.
