/// \file spio_heatmap.cpp
/// Render a spatial access profile (`profile.spio.json`, written by
/// `SPIO_PROFILE` — docs/OBSERVABILITY.md "Spatial access profiles") as
/// an ASCII 2-D heat grid plus a sorted hot-file table.
///
/// Usage:
///   spio_heatmap <profile.spio.json> [options]
///   spio_heatmap --diff <A.json> <B.json> [options]
///
/// Options:
///   --metric scanned|fetched|used|accesses   cell weight (default scanned)
///   --axis xy|xz|yz                          projection plane (default xy)
///   --width N                                grid width in cells (default 64)
///   --top N                                  hot-file table rows (default 10)
///
/// Every file's partition bbox is projected onto the chosen plane and
/// its metric is spread over the cells it covers, weighted by overlap
/// area — so heat shows *where in the domain* the bytes were moved, the
/// spatial view the per-query tables can't give. `--diff A B` renders
/// B−A instead: '+'/'#' cells got hotter, '-'/'=' cells cooled, which is
/// the before/after gate for layout or indexing changes (run the same
/// workload against both trees and diff the two profiles).

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/box.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace spio;

namespace {

struct FileHeat {
  std::string name;
  Box3 bounds;
  std::uint64_t accesses = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t bytes_used = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct DatasetHeat {
  std::string dir;
  Box3 domain;
  std::vector<FileHeat> files;
};

Box3 parse_box(const obs::JsonValue& b) {
  const obs::JsonValue& lo = b.at("lo");
  const obs::JsonValue& hi = b.at("hi");
  return Box3{{lo.at(std::size_t{0}).as_double(), lo.at(1).as_double(),
               lo.at(2).as_double()},
              {hi.at(std::size_t{0}).as_double(), hi.at(1).as_double(),
               hi.at(2).as_double()}};
}

std::vector<DatasetHeat> load_profile(const std::filesystem::path& path) {
  const std::vector<std::byte> bytes = read_file(path);
  const obs::JsonValue doc = obs::JsonValue::parse(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  if (!doc.is_object() || !doc.contains("format") ||
      doc.at("format").as_string() != "spio.access_profile") {
    throw FormatError("'" + path.string() + "' is not a spio.access_profile");
  }
  std::vector<DatasetHeat> out;
  const obs::JsonValue& datasets = doc.at("datasets");
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const obs::JsonValue& ds = datasets.at(d);
    DatasetHeat dh;
    dh.dir = ds.at("dir").as_string();
    dh.domain = parse_box(ds.at("domain"));
    const obs::JsonValue& files = ds.at("files");
    for (std::size_t i = 0; i < files.size(); ++i) {
      const obs::JsonValue& f = files.at(i);
      FileHeat fh;
      fh.name = f.at("name").as_string();
      fh.bounds = parse_box(f.at("bounds"));
      if (const obs::JsonValue* v = f.find("accesses"))
        fh.accesses = v->as_u64();
      if (const obs::JsonValue* v = f.find("bytes_scanned"))
        fh.bytes_scanned = v->as_u64();
      if (const obs::JsonValue* v = f.find("bytes_fetched"))
        fh.bytes_fetched = v->as_u64();
      if (const obs::JsonValue* v = f.find("bytes_used"))
        fh.bytes_used = v->as_u64();
      if (const obs::JsonValue* v = f.find("hits")) fh.hits = v->as_u64();
      if (const obs::JsonValue* v = f.find("misses")) fh.misses = v->as_u64();
      dh.files.push_back(std::move(fh));
    }
    out.push_back(std::move(dh));
  }
  return out;
}

/// The two projected axes of a plane spec ("xy" → 0,1).
bool parse_axis(const std::string& s, int& ax, int& ay) {
  const auto idx = [](char c) { return c == 'x' ? 0 : c == 'y' ? 1 : 2; };
  if (s.size() != 2 || s.find_first_not_of("xyz") != std::string::npos ||
      s[0] == s[1]) {
    return false;
  }
  ax = idx(s[0]);
  ay = idx(s[1]);
  return true;
}

double axis_of(const Vec3d& v, int axis) {
  return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
}

/// The cell-weight metric, resolved from its flag spelling once up front
/// so the per-file hot loops below never re-match strings.
enum class Metric { kScanned, kFetched, kUsed, kAccesses };

bool parse_metric(const std::string& s, Metric& m) {
  if (s == "scanned") m = Metric::kScanned;
  else if (s == "fetched") m = Metric::kFetched;
  else if (s == "used") m = Metric::kUsed;
  else if (s == "accesses") m = Metric::kAccesses;
  else return false;
  return true;
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kScanned: return "scanned";
    case Metric::kFetched: return "fetched";
    case Metric::kUsed: return "used";
    case Metric::kAccesses: return "accesses";
  }
  return "?";
}

std::uint64_t metric_of(const FileHeat& f, Metric metric) {
  switch (metric) {
    case Metric::kFetched: return f.bytes_fetched;
    case Metric::kUsed: return f.bytes_used;
    case Metric::kAccesses: return f.accesses;
    case Metric::kScanned: break;
  }
  return f.bytes_scanned;
}

/// Signed heat per grid cell: each file's metric spread over the cells
/// its projected bbox covers, weighted by overlap area. The bbox→cell
/// projection is hoisted per file: the overlap of the bbox with a cell
/// factors into per-column × per-row 1-D overlaps, so each is computed
/// once per file instead of once per covered cell — with 8192 files on
/// a wide grid the naive per-cell form dominated the render.
std::vector<double> rasterize(const DatasetHeat& ds, Metric metric,
                              int ax, int ay, int w, int h, double sign,
                              std::vector<double> grid) {
  if (grid.empty()) grid.assign(static_cast<std::size_t>(w * h), 0.0);
  const double dom_x0 = axis_of(ds.domain.lo, ax);
  const double dom_x1 = axis_of(ds.domain.hi, ax);
  const double dom_y0 = axis_of(ds.domain.lo, ay);
  const double dom_y1 = axis_of(ds.domain.hi, ay);
  const double sx = (dom_x1 - dom_x0) / w;
  const double sy = (dom_y1 - dom_y0) / h;
  if (sx <= 0 || sy <= 0) return grid;
  std::vector<double> ox, oy;  // 1-D overlaps, reused across files
  for (const FileHeat& f : ds.files) {
    const double m = static_cast<double>(metric_of(f, metric));
    if (m == 0) continue;
    const double fx0 = std::max(axis_of(f.bounds.lo, ax), dom_x0);
    const double fx1 = std::min(axis_of(f.bounds.hi, ax), dom_x1);
    const double fy0 = std::max(axis_of(f.bounds.lo, ay), dom_y0);
    const double fy1 = std::min(axis_of(f.bounds.hi, ay), dom_y1);
    const double area = (fx1 - fx0) * (fy1 - fy0);
    if (area <= 0) continue;
    const int cx0 = std::clamp(static_cast<int>((fx0 - dom_x0) / sx), 0, w - 1);
    const int cx1 =
        std::clamp(static_cast<int>(std::ceil((fx1 - dom_x0) / sx)), 1, w);
    const int cy0 = std::clamp(static_cast<int>((fy0 - dom_y0) / sy), 0, h - 1);
    const int cy1 =
        std::clamp(static_cast<int>(std::ceil((fy1 - dom_y0) / sy)), 1, h);
    ox.assign(static_cast<std::size_t>(cx1 - cx0), 0.0);
    for (int cx = cx0; cx < cx1; ++cx) {
      ox[static_cast<std::size_t>(cx - cx0)] =
          std::min(fx1, dom_x0 + (cx + 1) * sx) -
          std::max(fx0, dom_x0 + cx * sx);
    }
    oy.assign(static_cast<std::size_t>(cy1 - cy0), 0.0);
    for (int cy = cy0; cy < cy1; ++cy) {
      oy[static_cast<std::size_t>(cy - cy0)] =
          std::min(fy1, dom_y0 + (cy + 1) * sy) -
          std::max(fy0, dom_y0 + cy * sy);
    }
    const double scale = sign * m / area;
    for (int cy = cy0; cy < cy1; ++cy) {
      const double row = oy[static_cast<std::size_t>(cy - cy0)];
      if (row <= 0) continue;
      for (int cx = cx0; cx < cx1; ++cx) {
        const double col = ox[static_cast<std::size_t>(cx - cx0)];
        if (col <= 0) continue;
        grid[static_cast<std::size_t>(cy * w + cx)] += scale * row * col;
      }
    }
  }
  return grid;
}

/// Absolute heat: " .:-=+*#%@" darkening with load. Rows print top-down
/// (max y first) so the grid reads like a plot.
void print_grid(const std::vector<double>& grid, int w, int h, Metric metric,
                bool diff) {
  constexpr const char* kRamp = " .:-=+*#%@";
  constexpr int kRampN = 10;
  double max_abs = 0;
  for (const double v : grid) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0) {
    std::cout << "(no heat: every cell is zero)\n";
    return;
  }
  std::cout << "+" << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  for (int y = h - 1; y >= 0; --y) {
    std::cout << '|';
    for (int x = 0; x < w; ++x) {
      const double v = grid[static_cast<std::size_t>(y * w + x)];
      const int level = std::min(
          kRampN - 1,
          static_cast<int>(std::fabs(v) / max_abs * (kRampN - 1) + 0.5));
      if (!diff) {
        std::cout << kRamp[level];
      } else if (v > 0) {
        std::cout << (level >= kRampN / 2 ? '#' : level > 0 ? '+' : ' ');
      } else if (v < 0) {
        std::cout << (level >= kRampN / 2 ? '=' : level > 0 ? '-' : ' ');
      } else {
        std::cout << ' ';
      }
    }
    std::cout << "|\n";
  }
  std::cout << "+" << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  const std::string peak =
      metric == Metric::kAccesses
          ? std::to_string(static_cast<std::uint64_t>(max_abs))
          : format_bytes(static_cast<std::uint64_t>(max_abs));
  if (diff) {
    std::cout << "scale: '#'/'+' hotter in B, '='/'-' cooler in B; peak |"
              << metric_name(metric) << "| delta/cell = " << peak << "\n";
  } else {
    std::cout << "scale: ' ' = 0 .. '@' = " << peak << " ("
              << metric_name(metric) << "/cell)\n";
  }
}

/// Grid height for a domain: terminal cells are ~2:1, so halve the
/// aspect-correct height; clamp to something that fits one screen.
int grid_height(const Box3& domain, int ax, int ay, int w) {
  const double dx = axis_of(domain.hi, ax) - axis_of(domain.lo, ax);
  const double dy = axis_of(domain.hi, ay) - axis_of(domain.lo, ay);
  const double aspect = (dx > 0 && dy > 0) ? dy / dx : 1.0;
  return std::clamp(static_cast<int>(w * aspect * 0.5 + 0.5), 4, 48);
}

void print_hot_table(const DatasetHeat& ds, Metric metric, std::size_t top) {
  // Resolve the metric once per file before sorting: the comparator runs
  // O(n log n) times, and with 8192 profiler slots the per-compare metric
  // dispatch was the table's hot spot.
  std::vector<std::pair<std::uint64_t, const FileHeat*>> rows;
  for (const FileHeat& f : ds.files) {
    const std::uint64_t v = metric_of(f, metric);
    if (v > 0) rows.push_back({v, &f});
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  if (rows.size() > top) rows.resize(top);
  // Cap the name column so a full-width table (8192-slot profiles carry
  // long per-dataset paths) stays inside a terminal without wrapping;
  // keep the tail, where file names actually differ.
  constexpr std::size_t kNameWidth = 48;
  const auto clip = [](const std::string& name) {
    if (name.size() <= kNameWidth) return name;
    return "…" + name.substr(name.size() - (kNameWidth - 1));
  };
  Table t(std::string("hot files (by ") + metric_name(metric) + ")",
          {"file", "accesses", "scanned", "fetched", "used", "amp", "hits",
           "misses"});
  for (const auto& [v, f] : rows) {
    t.row()
        .add(clip(f->name))
        .add_int(static_cast<long long>(f->accesses))
        .add(format_bytes(f->bytes_scanned))
        .add(format_bytes(f->bytes_fetched))
        .add(format_bytes(f->bytes_used))
        .add_double(f->bytes_used
                        ? static_cast<double>(f->bytes_fetched) /
                              static_cast<double>(f->bytes_used)
                        : 0.0,
                    2)
        .add_int(static_cast<long long>(f->hits))
        .add_int(static_cast<long long>(f->misses));
  }
  t.print(std::cout);
}

/// B−A per-file deltas of one dataset (files matched by name; a file
/// missing on one side contributes its other side's full value).
DatasetHeat diff_dataset(const DatasetHeat& a, const DatasetHeat& b) {
  DatasetHeat out;
  out.dir = b.dir;
  out.domain = b.domain;
  std::map<std::string, const FileHeat*> before;
  for (const FileHeat& f : a.files) before[f.name] = &f;
  const auto sub = [](std::uint64_t x, std::uint64_t y) {
    return x >= y ? x - y : 0;  // clamp: counters only grow within a run
  };
  for (const FileHeat& f : b.files) {
    const auto it = before.find(f.name);
    FileHeat d = f;
    if (it != before.end()) {
      d.accesses = sub(f.accesses, it->second->accesses);
      d.bytes_scanned = sub(f.bytes_scanned, it->second->bytes_scanned);
      d.bytes_fetched = sub(f.bytes_fetched, it->second->bytes_fetched);
      d.bytes_used = sub(f.bytes_used, it->second->bytes_used);
      d.hits = sub(f.hits, it->second->hits);
      d.misses = sub(f.misses, it->second->misses);
    }
    out.files.push_back(std::move(d));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: spio_heatmap <profile.spio.json> [--metric "
      "scanned|fetched|used|accesses] [--axis xy|xz|yz] [--width N] "
      "[--top N]\n"
      "       spio_heatmap --diff <A.json> <B.json> [same options]\n";
  std::vector<std::filesystem::path> targets;
  std::string metric = "scanned";
  std::string axis = "xy";
  int width = 64;
  std::size_t top = 10;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* opt) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << opt << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--diff") == 0) diff = true;
    else if (std::strcmp(argv[i], "--metric") == 0) metric = value("--metric");
    else if (std::strcmp(argv[i], "--axis") == 0) axis = value("--axis");
    else if (std::strcmp(argv[i], "--width") == 0)
      width = std::atoi(value("--width"));
    else if (std::strcmp(argv[i], "--top") == 0)
      top = static_cast<std::size_t>(std::atoll(value("--top")));
    else if (argv[i][0] != '-') targets.push_back(argv[i]);
    else {
      std::cerr << "unknown option: " << argv[i] << "\n" << kUsage;
      return 2;
    }
  }
  int ax = 0, ay = 1;
  Metric m = Metric::kScanned;
  if (targets.size() != (diff ? 2u : 1u) || width < 8 || width > 400 ||
      !parse_axis(axis, ax, ay) || !parse_metric(metric, m)) {
    std::cerr << kUsage;
    return 2;
  }

  try {
    if (!diff) {
      const std::vector<DatasetHeat> datasets = load_profile(targets[0]);
      if (datasets.empty()) {
        std::cerr << "profile holds no datasets\n";
        return 1;
      }
      for (const DatasetHeat& ds : datasets) {
        const int h = grid_height(ds.domain, ax, ay, width);
        std::cout << "dataset " << ds.dir << " — " << ds.files.size()
                  << " files, " << axis << " projection, metric " << metric
                  << "\n";
        print_grid(rasterize(ds, m, ax, ay, width, h, 1.0, {}), width, h, m,
                   /*diff=*/false);
        std::cout << "\n";
        print_hot_table(ds, m, top);
        std::cout << "\n";
      }
      return 0;
    }

    // --diff A B: match datasets by directory, render B−A.
    const std::vector<DatasetHeat> a = load_profile(targets[0]);
    const std::vector<DatasetHeat> b = load_profile(targets[1]);
    bool any = false;
    for (const DatasetHeat& dsb : b) {
      const DatasetHeat* dsa = nullptr;
      for (const DatasetHeat& cand : a)
        if (cand.dir == dsb.dir) dsa = &cand;
      if (!dsa) continue;
      any = true;
      const DatasetHeat d = diff_dataset(*dsa, dsb);
      const int h = grid_height(d.domain, ax, ay, width);
      std::cout << "dataset " << d.dir << " — " << metric
                << " delta (B − A), " << axis << " projection\n";
      // Rasterize B−A as one signed pass over the per-file deltas.
      print_grid(rasterize(d, m, ax, ay, width, h, 1.0, {}), width, h, m,
                 /*diff=*/true);
      std::cout << "\n";
      print_hot_table(d, m, top);
      std::cout << "\n";
      std::uint64_t a_fetched = 0, a_used = 0, b_fetched = 0, b_used = 0;
      for (const FileHeat& f : dsa->files) {
        a_fetched += f.bytes_fetched;
        a_used += f.bytes_used;
      }
      for (const FileHeat& f : dsb.files) {
        b_fetched += f.bytes_fetched;
        b_used += f.bytes_used;
      }
      const auto amp = [](std::uint64_t fetched, std::uint64_t used) {
        return used ? static_cast<double>(fetched) / static_cast<double>(used)
                    : 0.0;
      };
      std::cout << "read amplification: A " << amp(a_fetched, a_used) << " → B "
                << amp(b_fetched, b_used) << "\n\n";
    }
    if (!any) {
      std::cerr << "the two profiles share no dataset directory\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
