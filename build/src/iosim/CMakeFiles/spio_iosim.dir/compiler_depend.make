# Empty compiler generated dependencies file for spio_iosim.
# This may be replaced when dependencies are built.
