#include "core/query_plan/planner.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/lod.hpp"
#include "util/error.hpp"

namespace spio {

std::uint64_t file_prefix_count(const DatasetMetadata& meta, int file_index,
                                int levels, int n_readers) {
  SPIO_EXPECTS(file_index >= 0 &&
               static_cast<std::size_t>(file_index) < meta.files.size());
  SPIO_EXPECTS(n_readers >= 1);
  const FileRecord& f = meta.files[static_cast<std::size_t>(file_index)];
  if (levels < 0) return f.particle_count;
  if (meta.total_particles == 0) return 0;
  const std::uint64_t global =
      lod_cumulative(meta.lod, n_readers, levels, meta.total_particles);
  // Proportional share of this file, rounded up so that reading "all
  // levels" always yields the whole file. 128-bit intermediate: counts can
  // be large enough for the product to overflow 64 bits.
  __extension__ typedef unsigned __int128 uint128_t;
  const uint128_t num = static_cast<uint128_t>(global) * f.particle_count +
                        meta.total_particles - 1;
  const auto share = static_cast<std::uint64_t>(num / meta.total_particles);
  return std::min(share, f.particle_count);
}

PlanMode plan_mode_from_env() {
  const char* v = std::getenv("SPIO_PLAN");
  return v != nullptr && std::strcmp(v, "linear") == 0 ? PlanMode::kLinear
                                                       : PlanMode::kPruned;
}

namespace {

/// The closed file-range test shared by both planners: can any record of
/// `f` pass every filter, judging by the recorded per-file min/max?
bool ranges_admit(const DatasetMetadata& meta, const FileRecord& f,
                  std::span<const RangeFilter> filters) {
  if (filters.empty() || !meta.has_field_ranges || f.field_ranges.empty())
    return true;
  for (const RangeFilter& rf : filters) {
    const std::size_t idx = meta.range_index(rf.field, rf.component);
    if (!f.field_ranges[idx].intersects(rf.lo, rf.hi)) return false;
  }
  return true;
}

/// Can any record of zone `zr` (one zone's component ranges) pass the
/// query? Closed on both sides: conservative for the half-open box
/// kernel AND for the `contains_box` whole-file fast path, which appends
/// upper-face records the half-open test would drop.
bool zone_admits(const DatasetMetadata& meta, const FieldRange* zr,
                 const Box3& box, std::span<const RangeFilter> filters) {
  for (int a = 0; a < 3; ++a) {
    const FieldRange& p =
        zr[meta.range_index(0, static_cast<std::uint32_t>(a))];
    const double lo = a == 0 ? box.lo.x : a == 1 ? box.lo.y : box.lo.z;
    const double hi = a == 0 ? box.hi.x : a == 1 ? box.hi.y : box.hi.z;
    if (!p.intersects(lo, hi)) return false;
  }
  for (const RangeFilter& rf : filters) {
    if (!zr[meta.range_index(rf.field, rf.component)].intersects(rf.lo,
                                                                 rf.hi))
      return false;
  }
  return true;
}

void check_plannable(const DatasetMetadata& meta) {
  // Same diagnosis as the metadata's linear path, raised before any work.
  SPIO_CHECK(meta.has_bounds, ConfigError,
             "dataset was written without spatial metadata; spatial "
             "queries require a full scan (use query_box_scan_all)");
}

}  // namespace

std::vector<int> QueryPlanner::intersecting(const DatasetMetadata& meta,
                                            const Box3& box) const {
  check_plannable(meta);
  if (mode_ == PlanMode::kLinear || tree_ == nullptr)
    return meta.files_intersecting(box);
  return tree_->query(box);
}

QueryPlan QueryPlanner::plan(const DatasetMetadata& meta, const Box3& box,
                             std::span<const RangeFilter> filters,
                             int levels, int n_readers) const {
  if (mode_ == PlanMode::kLinear)
    return plan_reference(meta, box, filters, levels, n_readers);
  check_plannable(meta);

  QueryPlan out;
  // File bounds are partition boxes, subsets of the domain: a query box
  // disjoint from the domain can hit nothing. Early-out before touching
  // any per-file metadata.
  if (!box.overlaps(meta.domain)) return out;

  const std::vector<int> candidates =
      tree_ != nullptr ? tree_->query(box) : meta.files_intersecting(box);
  out.files_considered = static_cast<int>(candidates.size());
  out.files.reserve(candidates.size());

  const std::uint64_t record = meta.schema.record_size();
  for (const int fi : candidates) {
    const FileRecord& f = meta.files[static_cast<std::size_t>(fi)];
    if (!ranges_admit(meta, f, filters)) {
      out.files_skipped += 1;
      continue;
    }
    const std::uint64_t want = file_prefix_count(meta, fi, levels, n_readers);
    std::uint64_t fetch = want;
    const FileZones* fz =
        zones_ != nullptr ? zones_->find(f.aggregator_rank) : nullptr;
    if (fz != nullptr && want > 0) {
      // Scan the zones that overlap the [0, want) prefix; the fetch ends
      // after the last zone that can still match. Prefixes are all a
      // reader can fetch, so only the tail is skippable.
      const std::size_t rc = meta.range_count();
      const std::uint32_t nz = zone_file_count(zones_->lod, f.particle_count);
      std::uint64_t keep = 0;
      for (std::uint32_t z = 0;
           z < nz && zone_begin(zones_->lod, z, f.particle_count) < want;
           ++z) {
        if (zone_admits(meta, fz->zones.data() + std::size_t{z} * rc, box,
                        filters)) {
          keep = std::min(want,
                          zone_begin(zones_->lod, z + 1, f.particle_count));
        }
      }
      if (keep == 0) {
        // No zone of the prefix can match: skip the file entirely.
        out.files_skipped += 1;
        out.zone_pruned = true;
        continue;
      }
      if (keep < want) {
        out.lod_bytes_skipped += (want - keep) * record;
        out.zone_pruned = true;
        fetch = keep;
      }
    }
    out.files.push_back({fi, fetch, want});
  }
  return out;
}

QueryPlan QueryPlanner::plan_reference(const DatasetMetadata& meta,
                                       const Box3& box,
                                       std::span<const RangeFilter> filters,
                                       int levels, int n_readers) const {
  check_plannable(meta);
  QueryPlan out;
  out.used_linear = true;
  if (!box.overlaps(meta.domain)) return out;
  const std::vector<int> candidates = meta.files_intersecting(box);
  out.files_considered = static_cast<int>(candidates.size());
  out.files.reserve(candidates.size());
  for (const int fi : candidates) {
    const FileRecord& f = meta.files[static_cast<std::size_t>(fi)];
    if (!ranges_admit(meta, f, filters)) {
      out.files_skipped += 1;
      continue;
    }
    const std::uint64_t want = file_prefix_count(meta, fi, levels, n_readers);
    out.files.push_back({fi, want, want});
  }
  return out;
}

}  // namespace spio
