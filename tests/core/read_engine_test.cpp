/// \file read_engine_test.cpp
/// The read engine's three guarantees, pinned:
///   1. the fused filter kernels are byte-identical to their retained
///      `*_reference` oracles on randomized schemas, boxes and filters
///      (NaNs included),
///   2. every query entry point returns byte-identical output under any
///      engine configuration (pool size, cache budget) — the serial
///      reference path is THE semantics, the engine only reproduces it
///      faster,
///   3. the buffer cache counts hits/misses/evictions correctly, a zero
///      budget reproduces plain reads exactly, and entries are never
///      served stale after a dataset is rewritten in place.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <mutex>
#include <vector>

#include "core/distributed_read.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "simd/position_mirror.hpp"
#include "simd/simd_level.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"
#include "util/temp_dir.hpp"
#include "workload/generators.hpp"

namespace spio {
namespace {

/// Scoped engine configuration: applies a pool size / cache budget and
/// restores the previous values (cache residents are dropped, which is
/// fine — they are a performance artifact, never a semantic one).
class EngineConfig {
 public:
  EngineConfig(int threads, std::uint64_t budget)
      : prev_threads_(ReadEngine::instance().concurrency()),
        prev_budget_(ReadEngine::instance().cache_budget()) {
    ReadEngine::instance().set_concurrency(threads);
    ReadEngine::instance().set_cache_budget(budget);
  }
  ~EngineConfig() {
    ReadEngine::instance().set_concurrency(prev_threads_);
    ReadEngine::instance().set_cache_budget(prev_budget_);
  }

 private:
  int prev_threads_;
  std::uint64_t prev_budget_;
};

bool same_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

Schema random_schema(Xoshiro256& rng) {
  std::vector<FieldDesc> fields{{"position", FieldType::kF64, 3}};
  const std::size_t extra = 1 + rng.uniform_index(3);
  for (std::size_t i = 0; i < extra; ++i)
    fields.push_back({"f" + std::to_string(i),
                      rng.uniform_index(2) == 0 ? FieldType::kF64
                                                : FieldType::kF32,
                      static_cast<std::uint32_t>(1 + rng.uniform_index(3))});
  return Schema(fields);
}

Box3 random_box(Xoshiro256& rng) {
  Box3 box;
  for (int a = 0; a < 3; ++a) {
    const double lo = rng.uniform(-0.1, 1.1);
    const double hi = rng.uniform(-0.1, 1.1);
    box.lo[a] = std::min(lo, hi);
    box.hi[a] = std::max(lo, hi);
  }
  return box;
}

// ---- 1. fused kernels vs reference oracles ----

TEST(ReadKernels, FilterBoxMatchesReferenceOnRandomInputs) {
  Xoshiro256 rng(401);
  for (int round = 0; round < 20; ++round) {
    const Schema schema = random_schema(rng);
    auto buf = workload::uniform(schema, Box3::unit(), 500 + rng.uniform_index(1500),
                                 rng.next(), 0);
    // Sprinkle NaN positions: Box3::contains excludes them, and both
    // kernels must agree on that.
    for (int k = 0; k < 5; ++k) {
      const std::size_t i = rng.uniform_index(buf.size());
      buf.set_position(i, {std::numeric_limits<double>::quiet_NaN(), 0.5, 0.5});
    }
    const Box3 box = random_box(rng);

    ParticleBuffer ref(schema), opt(schema);
    const auto nref =
        read_detail::filter_box_reference(buf.bytes(), schema, box, ref);
    const auto nopt = read_detail::filter_box(buf.bytes(), schema, box, opt);
    EXPECT_EQ(nref, nopt) << "round " << round;
    EXPECT_TRUE(same_bytes(ref.bytes(), opt.bytes())) << "round " << round;
  }
}

TEST(ReadKernels, FilterBoxRangesMatchesReferenceIncludingNaN) {
  Xoshiro256 rng(402);
  for (int round = 0; round < 20; ++round) {
    const Schema schema = random_schema(rng);
    auto buf = workload::uniform(schema, Box3::unit(), 1000, rng.next(), 0);

    // Filters over random (field, component) pairs of either type.
    std::vector<RangeFilter> filters;
    const std::size_t nf = 1 + rng.uniform_index(2);
    for (std::size_t k = 0; k < nf; ++k) {
      const std::size_t field = 1 + rng.uniform_index(schema.field_count() - 1);
      const FieldDesc& fd = schema.fields()[field];
      const std::uint32_t comp =
          static_cast<std::uint32_t>(rng.uniform_index(fd.components));
      const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
      filters.push_back({field, comp, std::min(a, b), std::max(a, b)});
    }
    // NaN attribute values pass a range filter (the reference's
    // `v < lo || v > hi` is false for NaN); pin that both agree.
    for (int k = 0; k < 5; ++k) {
      const std::size_t i = rng.uniform_index(buf.size());
      const RangeFilter& rf = filters[0];
      if (schema.fields()[rf.field].type == FieldType::kF64)
        buf.set_f64(i, rf.field, rf.component,
                    std::numeric_limits<double>::quiet_NaN());
      else
        buf.set_f32(i, rf.field, rf.component,
                    std::numeric_limits<float>::quiet_NaN());
    }
    const Box3 box = random_box(rng);

    ParticleBuffer ref(schema), opt(schema);
    const auto nref = read_detail::filter_box_ranges_reference(
        buf.bytes(), schema, box, filters, ref);
    const auto nopt =
        read_detail::filter_box_ranges(buf.bytes(), schema, box, filters, opt);
    EXPECT_EQ(nref, nopt) << "round " << round;
    EXPECT_TRUE(same_bytes(ref.bytes(), opt.bytes())) << "round " << round;
  }
}

TEST(ReadKernels, BinByOwnerMatchesReference) {
  Xoshiro256 rng(403);
  for (const int ranks : {1, 2, 5, 8}) {
    const Schema schema = random_schema(rng);
    const auto buf = workload::uniform(schema, Box3::unit(), 2000, rng.next(), 0);
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), ranks);

    std::vector<ParticleBuffer> ref(static_cast<std::size_t>(ranks),
                                    ParticleBuffer(schema));
    std::vector<ParticleBuffer> opt(static_cast<std::size_t>(ranks),
                                    ParticleBuffer(schema));
    read_detail::bin_by_owner_reference(buf.bytes(), schema, decomp, ref);
    read_detail::bin_by_owner(buf.bytes(), schema, decomp, opt);
    for (int r = 0; r < ranks; ++r)
      EXPECT_TRUE(same_bytes(ref[static_cast<std::size_t>(r)].bytes(),
                             opt[static_cast<std::size_t>(r)].bytes()))
          << ranks << " ranks, bin " << r;
  }
}

TEST(ReadKernels, ParseSizeBytes) {
  std::uint64_t v = 0;
  EXPECT_TRUE(read_detail::parse_size_bytes("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(read_detail::parse_size_bytes("4096", &v));
  EXPECT_EQ(v, 4096u);
  EXPECT_TRUE(read_detail::parse_size_bytes("64k", &v));
  EXPECT_EQ(v, 64u << 10);
  EXPECT_TRUE(read_detail::parse_size_bytes("256M", &v));
  EXPECT_EQ(v, 256u << 20);
  EXPECT_TRUE(read_detail::parse_size_bytes("2g", &v));
  EXPECT_EQ(v, 2ull << 30);
  EXPECT_FALSE(read_detail::parse_size_bytes("", &v));
  EXPECT_FALSE(read_detail::parse_size_bytes("abc", &v));
  EXPECT_FALSE(read_detail::parse_size_bytes("12q", &v));
  EXPECT_FALSE(read_detail::parse_size_bytes("12kk", &v));
}

// ---- 2. engine output is configuration-independent ----

class ReadEngineQueries : public ::testing::Test {
 protected:
  static constexpr int kRanks = 8;
  static constexpr std::uint64_t kPerRank = 500;

  static void SetUpTestSuite() {
    dir_ = new TempDir("spio-engine");
    write_to(dir_->path(), 7);
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  /// Write the 8-rank, 8-file dataset — factor {1,1,1} keeps one file
  /// per patch so queries genuinely fan out over files. (The seed varies
  /// the payload, the shape stays identical — used by the
  /// in-place-rewrite test.)
  static void write_to(const std::filesystem::path& dir, int seed) {
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    WriterConfig cfg;
    cfg.dir = dir;
    cfg.factor = {1, 1, 1};
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          Schema::uintah(), decomp.patch(comm.rank()), kPerRank,
          stream_seed(static_cast<std::uint64_t>(seed),
                      static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      write_dataset(comm, decomp, local, cfg);
    });
  }

  /// The retained serial reference path: per-file plain reads + the
  /// reference kernels, in file order. Computed with the cache off and
  /// the pool at 1, it is exactly the pre-engine read path.
  static ParticleBuffer reference_query_box(const Dataset& ds,
                                            const Box3& box) {
    EngineConfig serial(1, 0);
    ParticleBuffer out(ds.metadata().schema);
    for (const int fi : ds.metadata().files_intersecting(box)) {
      const ParticleBuffer buf = ds.read_data_file(fi);
      const auto& f = ds.metadata().files[static_cast<std::size_t>(fi)];
      if (box.contains_box(f.bounds))
        out.append_bytes(buf.bytes());
      else
        read_detail::filter_box_reference(buf.bytes(), ds.metadata().schema,
                                          box, out);
    }
    return out;
  }

  static ParticleBuffer reference_query(
      const Dataset& ds, const Box3& box,
      std::span<const Dataset::RangeFilter> filters) {
    EngineConfig serial(1, 0);
    ParticleBuffer out(ds.metadata().schema);
    for (const int fi : ds.files_matching(box, filters)) {
      const ParticleBuffer buf = ds.read_data_file(fi);
      read_detail::filter_box_ranges_reference(
          buf.bytes(), ds.metadata().schema, box, filters, out);
    }
    return out;
  }

  static TempDir* dir_;
};

TempDir* ReadEngineQueries::dir_ = nullptr;

TEST_F(ReadEngineQueries, EveryEntryPointIsByteIdenticalAcrossConfigs) {
  const Dataset ds = Dataset::open(dir_->path());
  const Schema& schema = ds.metadata().schema;
  const Box3 box({0.2, 0.15, 0.3}, {0.85, 0.8, 0.7});
  const std::vector<Dataset::RangeFilter> filters{
      {schema.index_of("density"), 0, 990.0, 1050.0}};

  const ParticleBuffer want_box = reference_query_box(ds, box);
  const ParticleBuffer want_rq = reference_query(ds, box, filters);
  ASSERT_GT(want_box.size(), 0u);
  ASSERT_GT(want_rq.size(), 0u);

  struct Config {
    int threads;
    std::uint64_t budget;
  };
  // Serial/no-cache (the exact pre-engine path), a parallel pool with a
  // roomy cache, a parallel pool with no cache, and a cache so small it
  // evicts on every fetch.
  for (const Config c : {Config{1, 0}, Config{4, 64ull << 20}, Config{4, 0},
                         Config{2, 200 << 10}}) {
    EngineConfig cfg(c.threads, c.budget);
    for (int pass = 0; pass < 2; ++pass) {  // pass 1 re-reads (cache warm)
      const ParticleBuffer got_box = ds.query_box(box);
      EXPECT_TRUE(same_bytes(got_box.bytes(), want_box.bytes()))
          << "query_box threads=" << c.threads << " budget=" << c.budget
          << " pass=" << pass;

      const ParticleBuffer got_rq = ds.query(box, filters);
      EXPECT_TRUE(same_bytes(got_rq.bytes(), want_rq.bytes()))
          << "query threads=" << c.threads << " budget=" << c.budget;

      const ParticleBuffer got_scan = ds.query_box_scan_all(box);
      EXPECT_TRUE(same_bytes(got_scan.bytes(), want_box.bytes()))
          << "query_box_scan_all threads=" << c.threads
          << " budget=" << c.budget;

      ParticleBuffer streamed(schema);
      ds.stream_box(box, [&](const ParticleBuffer& chunk) {
        streamed.append_bytes(chunk.bytes());
        return true;
      });
      EXPECT_TRUE(same_bytes(streamed.bytes(), want_box.bytes()))
          << "stream_box threads=" << c.threads << " budget=" << c.budget;
    }
  }
}

TEST_F(ReadEngineQueries, DistributedReadIsByteIdenticalAcrossConfigs) {
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), 4);

  const auto run_once = [&] {
    std::vector<std::vector<std::byte>> per_rank(4);
    simmpi::run(4, [&](simmpi::Comm& comm) {
      ParticleBuffer mine = distributed_read(comm, decomp, dir_->path());
      per_rank[static_cast<std::size_t>(comm.rank())] = mine.take_bytes();
    });
    return per_rank;
  };

  std::vector<std::vector<std::byte>> want;
  {
    EngineConfig serial(1, 0);
    want = run_once();
  }
  for (const int threads : {1, 4}) {
    EngineConfig cfg(threads, 64ull << 20);
    for (int pass = 0; pass < 2; ++pass) {
      const auto got = run_once();
      for (int r = 0; r < 4; ++r)
        EXPECT_TRUE(same_bytes(got[static_cast<std::size_t>(r)],
                               want[static_cast<std::size_t>(r)]))
            << "rank " << r << " threads=" << threads << " pass=" << pass;
    }
  }
}

TEST_F(ReadEngineQueries, StreamBoxStopsEarlyUnderPrefetch) {
  const Dataset ds = Dataset::open(dir_->path());
  EngineConfig cfg(4, 64ull << 20);
  std::uint64_t first_chunk = 0, calls = 0;
  const std::uint64_t delivered =
      ds.stream_box(ds.metadata().domain, [&](const ParticleBuffer& chunk) {
        ++calls;
        first_chunk = chunk.size();
        return false;  // stop after the first chunk
      });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(delivered, first_chunk);
  EXPECT_GT(delivered, 0u);
}

TEST_F(ReadEngineQueries, StatsCountIoTimeAndExactReturns) {
  const Dataset ds = Dataset::open(dir_->path());
  const Schema& schema = ds.metadata().schema;
  EngineConfig cfg(1, 0);
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});

  // Satellite of the engine PR: per-file file_io_seconds used to be
  // dropped by the query paths; now every opened file contributes.
  ReadStats rs;
  const ParticleBuffer out = ds.query_box(box, -1, 1, &rs);
  EXPECT_GT(rs.files_opened, 0);
  EXPECT_GT(rs.file_io_seconds, 0.0);
  EXPECT_EQ(rs.particles_returned, out.size());
  EXPECT_GE(rs.particles_scanned, rs.particles_returned);

  // `query` counts returns exactly (no subtract-and-recount): returned
  // equals the result size even though files are read whole and then
  // filtered.
  const std::vector<Dataset::RangeFilter> filters{
      {schema.index_of("density"), 0, 0.0, 1e30}};
  ReadStats rq;
  const ParticleBuffer out2 = ds.query(box, filters, -1, 1, &rq);
  EXPECT_EQ(rq.particles_returned, out2.size());
  EXPECT_GT(rq.file_io_seconds, 0.0);
}

// ---- 3. cache semantics ----

TEST_F(ReadEngineQueries, CacheCountsHitsMissesAndServesWarmQueriesFromMemory) {
  const Dataset ds = Dataset::open(dir_->path());
  EngineConfig cfg(1, 64ull << 20);
  ReadEngine& eng = ReadEngine::instance();
  eng.clear_cache();
  eng.reset_cache_stats();
  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});

  ReadStats cold;
  ds.query_box(box, -1, 1, &cold);
  EXPECT_GT(cold.files_opened, 0);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, static_cast<std::uint64_t>(cold.files_opened));

  ReadStats warm;
  ds.query_box(box, -1, 1, &warm);
  EXPECT_EQ(warm.files_opened, 0);
  EXPECT_EQ(warm.bytes_read, 0u);
  EXPECT_EQ(warm.cache_hits, static_cast<std::uint64_t>(cold.files_opened));
  EXPECT_EQ(warm.cache_misses, 0u);
  // The warm pass still scanned every cached prefix.
  EXPECT_EQ(warm.particles_scanned, cold.particles_scanned);

  const ReadCacheStats cs = eng.cache_stats();
  EXPECT_EQ(cs.misses, warm.cache_hits);
  EXPECT_GE(cs.hits, warm.cache_hits);
  EXPECT_GT(cs.bytes_held, 0u);
  EXPECT_EQ(cs.entries, static_cast<std::uint64_t>(cold.files_opened));
}

TEST_F(ReadEngineQueries, TinyBudgetEvictsAndZeroBudgetBypasses) {
  const Dataset ds = Dataset::open(dir_->path());
  ReadEngine& eng = ReadEngine::instance();
  const Box3 box = ds.metadata().domain;

  {
    // Budget of the largest file entry — prefix plus its SoA position
    // mirror when SIMD dispatch will build one: every fetch fits but
    // evicts the previously-cached file. One shard — this is a test of
    // LRU budget arithmetic, and a sharded cache splits the budget N
    // ways.
    const bool mirrored =
        simd::active_level() != simd::Level::kScalar;
    std::uint64_t one_file = 0;
    for (const auto& f : ds.metadata().files) {
      std::uint64_t charge =
          f.particle_count * ds.metadata().schema.record_size();
      if (mirrored)
        charge += PositionMirror::bytes_for_count(
            static_cast<std::size_t>(f.particle_count));
      one_file = std::max<std::uint64_t>(one_file, charge);
    }
    const int prev_shards = eng.cache_shards();
    eng.set_cache_shards(1);
    EngineConfig cfg(1, one_file);
    eng.clear_cache();
    eng.reset_cache_stats();
    ds.query_box(box);
    ds.query_box(box);
    const ReadCacheStats cs = eng.cache_stats();
    EXPECT_GT(cs.evictions, 0u);
    EXPECT_GT(cs.bytes_evicted, 0u);
    EXPECT_LE(cs.bytes_held, one_file);
    EXPECT_LE(cs.entries, 1u);
    eng.set_cache_shards(prev_shards);
  }
  {
    // Zero budget: plain reads, no cache traffic at all.
    EngineConfig cfg(1, 0);
    eng.reset_cache_stats();
    ReadStats rs;
    ds.query_box(box, -1, 1, &rs);
    EXPECT_EQ(rs.cache_hits, 0u);
    EXPECT_EQ(rs.cache_misses, 0u);
    EXPECT_EQ(rs.files_opened, ds.file_count());
    const ReadCacheStats cs = eng.cache_stats();
    EXPECT_EQ(cs.hits, 0u);
    EXPECT_EQ(cs.misses, 0u);
    EXPECT_EQ(cs.bytes_held, 0u);
  }
}

TEST_F(ReadEngineQueries, RewrittenDatasetIsNeverServedStale) {
  TempDir dir("spio-engine-rewrite");
  write_to(dir.path(), 100);
  EngineConfig cfg(1, 64ull << 20);
  ReadEngine& eng = ReadEngine::instance();
  eng.clear_cache();

  const Box3 box({0.1, 0.1, 0.1}, {0.9, 0.9, 0.9});
  const Dataset before = Dataset::open(dir.path());
  const ParticleBuffer old_out = before.query_box(box);  // primes the cache

  // Rewrite in place with different payloads (identical shape, so the
  // file sizes do not change), then push every data file's mtime well
  // past filesystem timestamp granularity.
  write_to(dir.path(), 101);
  const Dataset after = Dataset::open(dir.path());
  for (const auto& f : after.metadata().files) {
    const auto p = dir.path() / f.file_name();
    std::filesystem::last_write_time(
        p, std::filesystem::last_write_time(p) + std::chrono::seconds(5));
  }

  const ParticleBuffer fresh = [&] {
    EngineConfig bypass(1, 0);
    return after.query_box(box);
  }();
  ReadStats rs;
  const ParticleBuffer got = after.query_box(box, -1, 1, &rs);
  EXPECT_EQ(rs.cache_hits, 0u) << "stale prefixes must not satisfy fetches";
  EXPECT_TRUE(same_bytes(got.bytes(), fresh.bytes()));
  EXPECT_FALSE(same_bytes(got.bytes(), old_out.bytes()))
      << "rewrite with a different seed should change the query payload";
}

TEST_F(ReadEngineQueries, ConcurrentQueriesOnOneDatasetStayByteIdentical) {
  // 4 simmpi ranks querying one Dataset through a 4-thread pool and a
  // shared cache — the TSan-watched contention case.
  const Dataset ds = Dataset::open(dir_->path());
  EngineConfig cfg(4, 64ull << 20);
  const Box3 box({0.2, 0.15, 0.3}, {0.85, 0.8, 0.7});
  const ParticleBuffer want = reference_query_box(ds, box);

  std::mutex mu;
  std::vector<bool> ok;
  simmpi::run(4, [&](simmpi::Comm& comm) {
    (void)comm;
    for (int i = 0; i < 3; ++i) {
      const ParticleBuffer got = ds.query_box(box);
      const bool match = same_bytes(got.bytes(), want.bytes());
      std::lock_guard lk(mu);
      ok.push_back(match);
    }
  });
  EXPECT_EQ(ok.size(), 12u);
  for (const bool b : ok) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace spio
