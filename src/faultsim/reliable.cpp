#include "faultsim/reliable.hpp"

#include <thread>

#include "faultsim/fault_plan.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spio::faultsim {

std::vector<std::vector<std::byte>> reliable_exchange(
    simmpi::Comm& comm, std::vector<Outbound> to_send,
    const std::vector<int>& recv_from, int tag, const RetryPolicy& policy) {
  SPIO_EXPECTS(tag >= 0);
  SPIO_EXPECTS(policy.max_attempts > 0);
  const int atag = ack_tag(tag);
  using Clock = std::chrono::steady_clock;

  // Destination -> outbound index; doubles as the distinctness check the
  // (src, tag) dedup scheme relies on.
  std::vector<int> out_index(static_cast<std::size_t>(comm.size()), -1);
  for (std::size_t i = 0; i < to_send.size(); ++i) {
    const int dst = to_send[i].dst;
    SPIO_EXPECTS(dst >= 0 && dst < comm.size());
    SPIO_EXPECTS(out_index[static_cast<std::size_t>(dst)] == -1);
    out_index[static_cast<std::size_t>(dst)] = static_cast<int>(i);
  }
  std::vector<int> in_index(static_cast<std::size_t>(comm.size()), -1);
  for (std::size_t i = 0; i < recv_from.size(); ++i) {
    const int src = recv_from[i];
    SPIO_EXPECTS(src >= 0 && src < comm.size());
    SPIO_EXPECTS(in_index[static_cast<std::size_t>(src)] == -1);
    in_index[static_cast<std::size_t>(src)] = static_cast<int>(i);
  }

  obs::ScopedSpan span("faultsim.exchange", "faultsim");
  if (obs::enabled())
    obs::MetricsRegistry::global().counter("faultsim.exchanges").add(1);

  std::vector<std::vector<std::byte>> received(recv_from.size());
  std::vector<bool> got(recv_from.size(), false);
  std::vector<bool> acked(to_send.size(), false);
  std::vector<int> attempts(to_send.size(), 0);
  std::vector<Clock::time_point> last_tx(to_send.size());
  std::size_t got_count = 0;
  std::size_t acked_count = 0;

  auto transmit = [&](std::size_t i) {
    comm.send_bytes(to_send[i].dst, tag, to_send[i].payload);  // keep a copy
    ++attempts[i];
    last_tx[i] = Clock::now();
  };
  for (std::size_t i = 0; i < to_send.size(); ++i) transmit(i);

  while (acked_count < to_send.size() || got_count < recv_from.size()) {
    if (comm.aborting()) throw simmpi::Aborted();
    bool progress = false;

    int src = -1;
    while (comm.iprobe(simmpi::kAnySource, tag, &src)) {
      simmpi::Message m = comm.recv_message(src, tag);
      const int idx = in_index[static_cast<std::size_t>(m.src)];
      if (idx >= 0 && !got[static_cast<std::size_t>(idx)]) {
        got[static_cast<std::size_t>(idx)] = true;
        ++got_count;
        received[static_cast<std::size_t>(idx)] = std::move(m.payload);
      }
      // ACK unconditionally: a duplicate means the sender has not seen
      // our previous ACK (or a duplication fault fired — harmless).
      comm.send_bytes(m.src, atag, {});
      progress = true;
    }

    while (comm.iprobe(simmpi::kAnySource, atag, &src)) {
      comm.recv_message(src, atag);
      const int idx = out_index[static_cast<std::size_t>(src)];
      if (idx >= 0 && !acked[static_cast<std::size_t>(idx)]) {
        acked[static_cast<std::size_t>(idx)] = true;
        ++acked_count;
      }
      progress = true;
    }

    const auto now = Clock::now();
    for (std::size_t i = 0; i < to_send.size(); ++i) {
      if (acked[i] || now - last_tx[i] < policy.ack_timeout) continue;
      if (obs::enabled()) {
        // Every expiry is a timeout; only those within budget become a
        // retransmission (the out-of-budget one throws below).
        obs::MetricsRegistry::global().counter("faultsim.timeouts").add(1);
        if (attempts[i] < policy.max_attempts)
          obs::MetricsRegistry::global().counter("faultsim.retries").add(1);
      }
      obs::flight_record(obs::FlightType::kMark, "ack_timeout",
                         static_cast<std::uint64_t>(to_send[i].dst),
                         static_cast<std::uint64_t>(attempts[i]));
      obs::log::Event(attempts[i] < policy.max_attempts
                          ? obs::log::Level::kWarn
                          : obs::log::Level::kError,
                      "faultsim.ack_timeout")
          .kv("rank", comm.rank())
          .kv("dst", to_send[i].dst)
          .kv("tag", tag)
          .kv("attempt", attempts[i]);
      SPIO_CHECK(attempts[i] < policy.max_attempts, FaultError,
                 "rank " << comm.rank() << " got no acknowledgement from rank "
                         << to_send[i].dst << " on tag " << tag << " after "
                         << attempts[i] << " attempts");
      transmit(i);
      progress = true;
    }

    if (!progress) std::this_thread::sleep_for(policy.poll_interval);
  }
  return received;
}

}  // namespace spio::faultsim
