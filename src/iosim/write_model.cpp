#include "iosim/write_model.hpp"

#include <algorithm>
#include <cmath>

#include "iosim/event_sim.hpp"
#include "util/units.hpp"
#include "workload/decomposition.hpp"

namespace spio::iosim {

const char* write_scheme_name(WriteScheme s) {
  switch (s) {
    case WriteScheme::kSpio:
      return "spio";
    case WriteScheme::kFilePerProcess:
      return "file-per-process";
    case WriteScheme::kIorShared:
      return "IOR shared";
    case WriteScheme::kPhdf5:
      return "PHDF5";
  }
  return "?";
}

double WriteBreakdown::throughput_gbs() const {
  return spio::throughput_gbs(total_bytes, total_seconds());
}

double WriteBreakdown::aggregation_share() const {
  const double t = total_seconds();
  return t > 0 ? aggregation_seconds / t : 0.0;
}

namespace {

/// Storage-side time: F file creates on the MDS pool, pipelined into data
/// transfers on the active I/O resources; capped from below by the
/// per-writer injection ceiling.
struct StorageResult {
  double io_seconds;
  double create_seconds;
};

StorageResult storage_time(const MachineProfile& m, std::int64_t files,
                           double bytes_per_file, int active_resources,
                           std::int64_t writers, double total_bytes) {
  SPIO_EXPECTS(files >= 1);
  SPIO_EXPECTS(writers >= 1);
  active_resources = std::max(1, active_resources);

  const double create_eff =
      m.effective_create_seconds(static_cast<double>(files));
  const double service =
      (bytes_per_file + m.per_file_overhead_bytes) / m.resource_bw;

  // Cap the simulated job count: beyond ~64K files the queueing pattern
  // repeats, so simulate a representative prefix and scale. Keeps the DES
  // cheap for the 262,144-file cases.
  const std::int64_t sim_files = std::min<std::int64_t>(files, 1 << 16);
  const double scale =
      static_cast<double>(files) / static_cast<double>(sim_files);

  EventSim sim(active_resources);
  for (std::int64_t i = 0; i < sim_files; ++i) {
    // Creates proceed mds_parallelism at a time.
    const double ready = (static_cast<double>(i / m.mds_parallelism) + 1.0) *
                         create_eff * scale;
    sim.submit(static_cast<int>(i % active_resources), ready, service * scale);
  }
  sim.run();
  double io = sim.makespan();

  // Per-writer injection ceiling (few aggregators cannot saturate the
  // filesystem at small scale).
  const double writer_cap =
      total_bytes / (static_cast<double>(writers) * m.per_writer_bw);
  io = std::max(io, writer_cap);

  StorageResult r;
  r.io_seconds = io;
  r.create_seconds =
      static_cast<double>(files) * create_eff / m.mds_parallelism;
  return r;
}

}  // namespace

WriteBreakdown model_write(const MachineProfile& m, const WriteCase& c) {
  SPIO_CHECK(c.nprocs >= 1, ConfigError, "nprocs must be >= 1");
  SPIO_CHECK(c.factor.valid(), ConfigError, "invalid partition factor");

  const double d = static_cast<double>(c.bytes_per_proc());
  const double total = static_cast<double>(c.total_bytes());

  WriteBreakdown b;
  b.total_bytes = c.total_bytes();

  switch (c.scheme) {
    case WriteScheme::kSpio: {
      const Vec3i grid = c.process_grid == Vec3i{0, 0, 0}
                             ? near_cubic_factors(c.nprocs)
                             : c.process_grid;
      SPIO_CHECK(grid.product() == c.nprocs, ConfigError,
                 "process grid " << grid << " does not match " << c.nprocs
                                 << " ranks");
      b.files = file_count(grid, c.factor);
      b.group_size = (c.nprocs + b.files - 1) / b.files;
      b.aggregation_seconds =
          m.aggregation_seconds(static_cast<int>(b.group_size), d);
      const auto st = storage_time(m, b.files, total / static_cast<double>(b.files),
                                   std::min<std::int64_t>(
                                       m.job_resources(c.nprocs), b.files),
                                   b.files, total);
      b.io_seconds = st.io_seconds;
      b.create_seconds = st.create_seconds;
      break;
    }
    case WriteScheme::kFilePerProcess: {
      b.files = c.nprocs;
      b.group_size = 1;
      const auto st = storage_time(
          m, b.files, d,
          std::min<std::int64_t>(m.job_resources(c.nprocs), b.files), c.nprocs,
          total);
      b.io_seconds = st.io_seconds;
      b.create_seconds = st.create_seconds;
      break;
    }
    case WriteScheme::kIorShared: {
      b.files = 1;
      b.group_size = c.nprocs;
      const double eff = m.shared_base_efficiency /
                         (1.0 + m.shared_lock_factor * c.nprocs);
      const double bw =
          static_cast<double>(m.job_resources(c.nprocs)) * m.resource_bw * eff;
      b.io_seconds = total / bw;
      b.create_seconds = m.file_create_seconds;
      break;
    }
    case WriteScheme::kPhdf5: {
      b.files = 1;
      b.group_size = c.nprocs;
      const double eff = m.shared_base_efficiency /
                         (1.0 + m.shared_lock_factor * c.nprocs);
      const double bw =
          static_cast<double>(m.job_resources(c.nprocs)) * m.resource_bw * eff;
      double t = 1.3 * total / bw;  // layered-format overhead over raw shared
      // Collective metadata rounds (dataset/chunk bookkeeping).
      t += 64.0 * m.msg_latency * std::log2(std::max(2, c.nprocs));
      // Instability past 32K ranks reported by Byna et al.: model as a
      // steep degradation rather than a hard failure.
      if (c.nprocs > 32768) t *= std::sqrt(c.nprocs / 32768.0);
      b.io_seconds = t;
      b.create_seconds = m.file_create_seconds;
      break;
    }
  }
  return b;
}

WriteBreakdown model_adaptive_write(const MachineProfile& m,
                                    const AdaptiveCase& c) {
  SPIO_CHECK(c.coverage > 0.0 && c.coverage <= 1.0, ConfigError,
             "coverage must be in (0, 1]");
  SPIO_CHECK(c.factor.valid(), ConfigError, "invalid partition factor");

  const double total =
      static_cast<double>(c.total_particles * c.record_bytes);
  const std::int64_t g = c.factor.group_size();
  const auto occupied_ranks = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(c.coverage * c.nprocs));
  // Both schemes produce one non-empty file per occupied partition:
  // partitions holding no particles write nothing.
  const std::int64_t files = std::max<std::int64_t>(
      1, (occupied_ranks + g - 1) / g);
  // Every occupied rank holds total/occupied particles; an aggregator
  // absorbs a group of them.
  const double per_sender = total / static_cast<double>(occupied_ranks);
  const int senders_per_partition = static_cast<int>(
      std::min<std::int64_t>(g, occupied_ranks));

  WriteBreakdown b;
  b.total_bytes = static_cast<std::uint64_t>(total);
  b.files = files;
  b.group_size = g;
  b.aggregation_seconds =
      m.aggregation_seconds(senders_per_partition, per_sender);

  const int job_res = m.job_resources(c.nprocs);
  const int active =
      static_cast<int>(std::min<std::int64_t>(job_res, files));
  const auto st = storage_time(m, files, total / static_cast<double>(files),
                               active, files, total);
  b.io_seconds = st.io_seconds;
  b.create_seconds = st.create_seconds;
  if (!c.adaptive) {
    // Aggregators were assigned to every partition of the full-domain
    // grid (Fig. 10e); the active ones — those owning occupied
    // partitions — concentrate in a (1 - coverage)-clustered sub-range
    // of the rank space, under-utilizing rank-mapped I/O resources.
    b.io_seconds *= 1.0 + m.placement_loss * (1.0 - c.coverage);
  }
  return b;
}

}  // namespace spio::iosim
