# Empty dependencies file for abl_shuffle_heuristic.
# This may be replaced when dependencies are built.
