#include "simd/simd_level.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace spio::simd {

// Defined in the per-ISA kernel TUs: false when the toolchain could not
// build that TU at its target ISA (the functions are abort() stubs then).
bool sse2_compiled();
bool avx2_compiled();

namespace {

Level cpu_level() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2") && avx2_compiled()) return Level::kAVX2;
  if (sse2_compiled()) return Level::kSSE2;
  return Level::kScalar;
#else
  return Level::kScalar;
#endif
}

/// `SPIO_SIMD` cap, parsed once. Unrecognized values mean "no cap" so a
/// typo degrades to auto-dispatch, never to silent scalar.
Level env_cap() {
  const char* env = std::getenv("SPIO_SIMD");
  if (!env) return Level::kAVX2;
  const std::string v(env);
  if (v == "off" || v == "scalar" || v == "0") return Level::kScalar;
  if (v == "sse2") return Level::kSSE2;
  return Level::kAVX2;
}

/// Test cap installed by ScopedLevelCap; -1 = none. Plain int so the
/// RAII restore can nest.
std::atomic<int> t_cap{-1};

}  // namespace

Level detected_level() {
  static const Level level = cpu_level();
  return level;
}

Level active_level() {
  static const Level capped = std::min(detected_level(), env_cap());
  const int cap = t_cap.load(std::memory_order_relaxed);
  if (cap < 0) return capped;
  return std::min(capped, static_cast<Level>(cap));
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kSSE2: return "sse2";
    case Level::kAVX2: return "avx2";
    case Level::kScalar: break;
  }
  return "scalar";
}

ScopedLevelCap::ScopedLevelCap(Level cap)
    : prev_(t_cap.load(std::memory_order_relaxed)) {
  t_cap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

ScopedLevelCap::~ScopedLevelCap() {
  t_cap.store(prev_, std::memory_order_relaxed);
}

}  // namespace spio::simd
