/// \file spio_bench.cpp
/// Parameterized write/read benchmark for the spio pipeline on the local
/// machine — this library's h5perf. Two modes:
///
/// Sweep (default): writes a synthetic Uintah-style workload with a sweep
/// of partition factors, reporting per-phase times (the real Fig. 6
/// breakdown at laptop scale), then measures metadata-guided read strong
/// scaling on the best configuration.
///
/// Hotpath (`--hotpath`): machine-readable per-stage benchmark of the
/// write pipeline's hot paths (binning, exchange, LOD reorder, CRC, file
/// write) at 8 and 32 ranks, plus micro-benchmarks that pit the optimized
/// kernels against their pre-optimization reference implementations.
/// `bench/run_hotpath.sh` uses it to regenerate BENCH_hotpath.json, the
/// committed perf baseline CI compares against.
///
/// Serve (`--serve`): closed-loop multi-client benchmark of the
/// concurrent query service (core/query_service.hpp) over the same
/// 216-file dataset as `--readpath`: a Zipfian hot-spot mix of box, LOD
/// and range-filter queries at 1, 4 and 16 clients, reporting QPS and
/// p50/p99 latency per client count plus the 16-client scaling factor.
/// On a single core the scaling comes from query coalescing — hot-spot
/// clients share one execution and one result buffer — which is exactly
/// what the service exists to prove. `bench/run_hotpath.sh` regenerates
/// BENCH_servepath.json from it.
///
/// Usage:
///   spio_bench [--ranks N] [--particles P] [--reps R] [--dir path]
///              [--factors f1,f2,...]   (factors like 2x2x1)
///              [--json FILE] [--hotpath] [--readpath] [--serve]
///              [--compare FILE] [--trace FILE]
///
/// `--trace FILE` turns on the observability layer for the whole run and
/// writes the merged Chrome trace-event JSON (chrome://tracing, Perfetto)
/// to FILE on exit; `spio_trace FILE` renders it as a phase table.
///
/// `--compare FILE` (hotpath mode) gates the fresh results against a
/// committed baseline: any micro-kernel speedup more than 15% below
/// FILE's value, or any per-stage MB/s more than 35% below (absolute
/// stage throughput rides host weather), fails the run with a non-zero
/// exit — the perf-regression gate `bench/run_hotpath.sh` applies
/// against BENCH_hotpath.json. The baseline is read before `--json` overwrites
/// it, so both flags may name the same file.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "core/distributed_read.hpp"
#include "core/query_plan/kd_tree.hpp"
#include "core/query_service.hpp"
#include "core/read_engine.hpp"
#include "core/reader.hpp"
#include "core/writer.hpp"
#include "obs/access_profile.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"
#include "simd/position_mirror.hpp"
#include "simd/simd_level.hpp"
#include "util/serialize.hpp"
#include "simmpi/runtime.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/temp_dir.hpp"
#include "util/units.hpp"
#include "workload/generators.hpp"

using namespace spio;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool parse_factor(const std::string& s, PartitionFactor* out) {
  int px = 0, py = 0, pz = 0;
  if (std::sscanf(s.c_str(), "%dx%dx%d", &px, &py, &pz) != 3) return false;
  *out = {px, py, pz};
  return out->valid();
}

/// Minimal JSON emitter: enough structure for BENCH_*.json files without
/// pulling in a dependency. Numbers print with full double precision.
class Json {
 public:
  void open_obj(const std::string& key = "") { tag(key); out_ << "{"; fresh_ = true; }
  void close_obj() { out_ << "}"; fresh_ = false; }
  void open_arr(const std::string& key) { tag(key); out_ << "["; fresh_ = true; }
  void close_arr() { out_ << "]"; fresh_ = false; }
  void field(const std::string& key, double v) {
    tag(key);
    out_ << v;
  }
  void field(const std::string& key, std::uint64_t v) {
    tag(key);
    out_ << v;
  }
  void field(const std::string& key, int v) { tag(key); out_ << v; }
  void field(const std::string& key, const std::string& v) {
    tag(key);
    out_ << '"' << v << '"';
  }
  std::string str() const { return out_.str(); }

 private:
  void tag(const std::string& key) {
    if (!fresh_) out_ << ",";
    fresh_ = false;
    if (!key.empty()) out_ << '"' << key << "\":";
  }
  std::ostringstream out_;
  bool fresh_ = true;
};

void write_json(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot open '" << path << "' for writing\n";
    std::exit(1);
  }
  f << body << "\n";
  std::cout << "wrote " << path << "\n";
}

/// Best wall time of `reps` runs of `fn`.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

// ---- hotpath mode ----

/// One write job at `ranks` with per-stage timings (max over ranks, the
/// job-level Fig. 6 view) plus isolated bin / crc measurements on the
/// same data shapes.
void hotpath_job(Json& j, int ranks, std::uint64_t per_rank,
                 const PartitionFactor& factor, int reps) {
  const Schema schema = Schema::uintah();
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), ranks);
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(ranks) * per_rank * schema.record_size();

  // Stage timings from the real pipeline (general exchange, so the
  // binning/exchange stages measure the per-particle path the paper's
  // Fig. 6 breakdown times).
  WriteStats job{};
  double best_wall = 1e300;
  TempDir scratch("spio-hotpath");
  for (int rep = 0; rep < reps; ++rep) {
    WriteStats rep_job{};
    std::mutex mu;
    const auto t0 = std::chrono::steady_clock::now();
    simmpi::run(ranks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          schema, decomp.patch(comm.rank()), per_rank,
          stream_seed(77 + rep, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * per_rank);
      WriterConfig cfg;
      cfg.dir = scratch.path() /
                ("job_" + std::to_string(ranks) + "_" + std::to_string(rep));
      cfg.factor = factor;
      cfg.force_general_exchange = true;
      const WriteStats s = write_dataset(comm, decomp, local, cfg);
      std::lock_guard lk(mu);
      rep_job = WriteStats::max_over(rep_job, s);
    });
    const double wall = seconds_since(t0);
    if (wall < best_wall) {
      best_wall = wall;
      job = rep_job;
    }
  }

  // Isolated general-path binning of one rank's buffer against the job's
  // plan (binning lives inside meta_exchange_seconds in the job view).
  const auto plan =
      AggregationPlan::non_adaptive(decomp, factor, AggregatorPlacement::kUniform);
  const auto local = workload::uniform(schema, decomp.patch(0), per_rank,
                                       stream_seed(77, 0), 0);
  const double bin_s = best_seconds(reps, [&] {
    const auto bins = writer_detail::bin_particles(local, plan, false);
    if (bins.bin_count() == 0) std::abort();
  });

  // CRC over an aggregator-sized buffer (the checksum cost of one file).
  const std::uint64_t agg_bytes =
      total_bytes / static_cast<std::uint64_t>(plan.partition_count());
  std::vector<std::byte> crc_buf(agg_bytes);
  Xoshiro256 rng(9);
  for (auto& b : crc_buf) b = static_cast<std::byte>(rng.next());
  volatile std::uint64_t sink = 0;
  const double crc_s =
      best_seconds(reps, [&] { sink = sink ^ crc64(crc_buf); });

  const double mb = static_cast<double>(total_bytes) / 1e6;
  j.open_obj();
  j.field("ranks", ranks);
  j.field("particles_per_rank", per_rank);
  j.field("factor", factor.to_string());
  j.field("partitions", plan.partition_count());
  j.field("total_mb", mb);
  j.field("wall_seconds", best_wall);
  j.open_obj("stages_seconds");
  j.field("bin", bin_s);
  j.field("exchange",
          job.meta_exchange_seconds + job.particle_exchange_seconds);
  j.field("reorder", job.reorder_seconds);
  j.field("crc", crc_s);
  j.field("write", job.file_io_seconds);
  j.close_obj();
  j.open_obj("stages_mbps");
  const double rank_mb =
      static_cast<double>(per_rank * schema.record_size()) / 1e6;
  j.field("bin", rank_mb / bin_s);
  j.field("exchange",
          mb / (job.meta_exchange_seconds + job.particle_exchange_seconds));
  j.field("reorder", mb / job.reorder_seconds);
  j.field("crc", static_cast<double>(agg_bytes) / 1e6 / crc_s);
  j.field("write", mb / job.file_io_seconds);
  j.close_obj();
  j.close_obj();
}

// ---- perf-regression gate ----

/// Array element whose `key` field equals `want`, or null. Hotpath arrays
/// are keyed by a shape discriminator (bytes, schema_bytes, ranks) so a
/// baseline regenerated with different entries still matches by shape.
const obs::JsonValue* find_entry(const obs::JsonValue* arr, const char* key,
                                 std::int64_t want) {
  if (!arr || !arr->is_array()) return nullptr;
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const obs::JsonValue& e = arr->at(i);
    if (!e.is_object()) continue;
    if (const obs::JsonValue* k = e.find(key))
      if (k->as_i64() == want) return &e;
  }
  return nullptr;
}

/// String-keyed variant: readpath arrays are keyed by a name
/// ("kernel", "stage").
const obs::JsonValue* find_entry(const obs::JsonValue* arr, const char* key,
                                 const std::string& want) {
  if (!arr || !arr->is_array()) return nullptr;
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const obs::JsonValue& e = arr->at(i);
    if (!e.is_object()) continue;
    if (const obs::JsonValue* k = e.find(key))
      if (k->is_string() && k->as_string() == want) return &e;
  }
  return nullptr;
}

struct GateRow {
  std::string metric;
  double baseline;
  double current;
  /// Fractional regression allowed before the row fails. CPU-bound
  /// metrics use the default; cold-I/O stage ratios get a wider band
  /// because both their terms ride host I/O weather (see
  /// docs/PERF.md "Read path").
  double tolerance = 0.15;
  /// Latency-style metrics regress *upward*: the row fails when the
  /// ratio exceeds 1 + tolerance instead of dropping below 1 - tolerance.
  bool lower_is_better = false;
};

/// The shared regression check of `--compare`: any row more than its
/// tolerance past its baseline (below for throughput metrics, above for
/// lower-is-better ones) fails the gate. Metrics present in only one
/// document never fail it (the baseline may predate a stage).
int gate_rows(const std::vector<GateRow>& rows, const std::string& title,
              const char* what) {
  if (rows.empty()) {
    std::cerr << "compare: no common " << what
              << " metrics between baseline and this run\n";
    return 1;
  }
  int regressions = 0;
  Table t(title, {"metric", "baseline", "current", "ratio", "status"});
  for (const GateRow& r : rows) {
    const double ratio = r.baseline > 0 ? r.current / r.baseline : 1.0;
    const bool regressed = r.lower_is_better ? ratio > 1.0 + r.tolerance
                                             : ratio < 1.0 - r.tolerance;
    if (regressed) ++regressions;
    t.row()
        .add(r.metric)
        .add_double(r.baseline, 2)
        .add_double(r.current, 2)
        .add_double(ratio, 3)
        .add(regressed ? "REGRESSED" : "ok");
  }
  t.print(std::cout);
  if (regressions > 0) {
    std::cerr << "compare: " << regressions
              << " metric(s) regressed past tolerance vs baseline\n";
    return 1;
  }
  std::cout << "compare: all " << rows.size() << " metrics within tolerance\n";
  return 0;
}

/// Gate fresh hotpath results against a committed baseline document.
/// Compares micro-kernel speedups (crc64, binning) and per-stage MB/s of
/// each pipeline job; a metric more than `kTolerance` below baseline is a
/// regression. Metrics present in only one document are reported but
/// never fail the gate (the baseline may predate a new stage).
int compare_hotpath(const std::string& baseline_text,
                    const std::string& current_text) {
  const obs::JsonValue base = obs::JsonValue::parse(baseline_text);
  const obs::JsonValue cur = obs::JsonValue::parse(current_text);

  std::vector<GateRow> rows;
  const auto add = [&](std::string metric, const obs::JsonValue* b,
                       const obs::JsonValue* c, const char* key) {
    if (!b || !c) return;
    const obs::JsonValue* bv = b->find(key);
    const obs::JsonValue* cv = c->find(key);
    if (!bv || !cv) return;
    rows.push_back({std::move(metric), bv->as_double(), cv->as_double()});
  };

  if (const obs::JsonValue* cc = cur.find("crc64"))
    for (std::size_t i = 0; i < cc->size(); ++i) {
      const std::int64_t bytes = cc->at(i).at("bytes").as_i64();
      add("crc64[" + std::to_string(bytes >> 20) + "MiB].speedup",
          find_entry(base.find("crc64"), "bytes", bytes), &cc->at(i),
          "speedup");
    }
  if (const obs::JsonValue* cb = cur.find("binning_general"))
    for (std::size_t i = 0; i < cb->size(); ++i) {
      const std::int64_t sb = cb->at(i).at("schema_bytes").as_i64();
      add("binning[" + std::to_string(sb) + "B].speedup",
          find_entry(base.find("binning_general"), "schema_bytes", sb),
          &cb->at(i), "speedup");
    }
  if (const obs::JsonValue* cj = cur.find("jobs"))
    for (std::size_t i = 0; i < cj->size(); ++i) {
      const std::int64_t ranks = cj->at(i).at("ranks").as_i64();
      const obs::JsonValue* bj = find_entry(base.find("jobs"), "ranks", ranks);
      const obs::JsonValue* bs = bj ? bj->find("stages_mbps") : nullptr;
      const obs::JsonValue* cs = cj->at(i).find("stages_mbps");
      for (const char* stage :
           {"bin", "exchange", "reorder", "crc", "write"}) {
        const std::size_t before = rows.size();
        add("job" + std::to_string(ranks) + "." + stage + "_mbps", bs, cs,
            stage);
        // Absolute stage throughput of a threaded job on a shared host
        // rides CPU/IO weather far harder than the in-process speedup
        // ratios above; give it the wide band (docs/PERF.md).
        if (rows.size() > before) rows.back().tolerance = 0.35;
      }
    }

  return gate_rows(rows, "hotpath vs baseline (gate: regression past band fails)",
                   "hotpath");
}

int run_hotpath(const std::string& json_path, const std::string& compare_path,
                int reps) {
  // Read the baseline up front: --json may overwrite the same file.
  std::string baseline_text;
  if (!compare_path.empty()) {
    const std::vector<std::byte> bytes = read_file(compare_path);
    baseline_text.assign(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  }
  const Schema schema = Schema::uintah();
  Json j;
  j.open_obj();
  j.field("bench", "hotpath");
  j.field("generated_by", "tools/spio_bench --hotpath --json BENCH_hotpath.json");
  j.field("schema_bytes_per_particle",
          static_cast<std::uint64_t>(schema.record_size()));

  // -- micro: crc64 slicing-by-16 vs byte-at-a-time reference --
  // Two working sets: 4 MiB (cache-hot, the shape the fused
  // crc64_write_file path actually sees — it checksums 1 MiB chunks right
  // after writing them) and 64 MiB (DRAM-resident stream). Reps are
  // interleaved so both implementations see the same machine state.
  j.open_arr("crc64");
  for (const std::size_t mib : {std::size_t{4}, std::size_t{64}}) {
    const std::size_t bytes = mib << 20;
    std::vector<std::byte> buf(bytes);
    Xoshiro256 rng(1);
    for (auto& b : buf) b = static_cast<std::byte>(rng.next());
    if (crc64(buf) != crc64_bytewise(buf)) {
      std::cerr << "crc64 implementations disagree\n";
      return 1;
    }
    volatile std::uint64_t sink = 0;
    double ref_s = 1e300, opt_s = 1e300;
    for (int r = 0; r < std::max(reps, 5); ++r) {
      ref_s = std::min(
          ref_s, best_seconds(1, [&] { sink = sink ^ crc64_bytewise(buf); }));
      opt_s =
          std::min(opt_s, best_seconds(1, [&] { sink = sink ^ crc64(buf); }));
    }
    const double gb = static_cast<double>(bytes) / 1e9;
    j.open_obj();
    j.field("bytes", static_cast<std::uint64_t>(bytes));
    j.field("bytewise_gbs", gb / ref_s);
    j.field("slice16_gbs", gb / opt_s);
    j.field("speedup", ref_s / opt_s);
    j.close_obj();
    std::cout << "crc64 (" << mib << " MiB)  " << gb / ref_s << " -> "
              << gb / opt_s << " GB/s  (x" << ref_s / opt_s << ")\n";
  }
  j.close_arr();

  // -- micro: general-path binning, histogram+scatter vs map reference --
  // Paper-scale partition count (512 ranks, one partition per rank) with
  // particles spread over the whole domain so every partition receives a
  // share — the worst case the general path exists for (drifted
  // particles). Reference and optimized reps are interleaved so both see
  // the same thermal/allocator state; both are warmed once untimed.
  j.open_arr("binning_general");
  {
    constexpr int kRanks = 512;
    constexpr std::uint64_t kParticles = 1000000;
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    const auto plan = AggregationPlan::non_adaptive(
        decomp, {1, 1, 1}, AggregatorPlacement::kUniform);
    const Schema schemas[2] = {Schema::uintah(), Schema::position_only()};
    for (const Schema& s : schemas) {
      const auto local = workload::uniform(s, Box3::unit(), kParticles,
                                           stream_seed(2, 0), 0);
      (void)writer_detail::bin_particles(local, plan, false);
      (void)writer_detail::bin_particles_reference(local, plan, false);
      double ref_s = 1e300, opt_s = 1e300;
      for (int r = 0; r < std::max(reps, 5); ++r) {
        ref_s = std::min(ref_s, best_seconds(1, [&] {
          const auto bins =
              writer_detail::bin_particles_reference(local, plan, false);
          if (bins.bin_count() == 0) std::abort();
        }));
        opt_s = std::min(opt_s, best_seconds(1, [&] {
          const auto bins = writer_detail::bin_particles(local, plan, false);
          if (bins.bin_count() == 0) std::abort();
        }));
      }
      const double mp = static_cast<double>(kParticles) / 1e6;
      j.open_obj();
      j.field("schema_bytes", static_cast<std::uint64_t>(s.record_size()));
      j.field("particles", kParticles);
      j.field("partitions", plan.partition_count());
      j.field("reference_mpps", mp / ref_s);
      j.field("optimized_mpps", mp / opt_s);
      j.field("speedup", ref_s / opt_s);
      j.close_obj();
      std::cout << "binning (" << s.record_size() << " B/rec) " << mp / ref_s
                << " -> " << mp / opt_s << " Mparticles/s  (x"
                << ref_s / opt_s << ")\n";
    }
  }
  j.close_arr();

  // -- micro: per-file field-range pass (record-major) --
  {
    constexpr std::uint64_t kParticles = 500000;
    const auto buf = workload::uniform(schema, Box3::unit(), kParticles,
                                       stream_seed(3, 0), 0);
    const double s = best_seconds(reps, [&] {
      const auto ranges = writer_detail::compute_field_ranges(buf);
      if (ranges.empty()) std::abort();
    });
    j.open_obj("field_ranges");
    j.field("particles", kParticles);
    j.field("gbs", static_cast<double>(buf.byte_size()) / 1e9 / s);
    j.close_obj();
    std::cout << "field ranges " << static_cast<double>(buf.byte_size()) / 1e9 / s
              << " GB/s\n";
  }

  // -- pipeline stage breakdown at 8 and 32 ranks --
  j.open_arr("jobs");
  hotpath_job(j, 8, 50000, {2, 2, 1}, reps);
  hotpath_job(j, 32, 20000, {2, 2, 2}, reps);
  j.close_arr();
  j.close_obj();

  if (!json_path.empty()) write_json(json_path, j.str());
  if (!compare_path.empty()) return compare_hotpath(baseline_text, j.str());
  return 0;
}

// ---- readpath mode ----

/// The pre-engine serial box query: per-file reads (`read_data_file` is a
/// plain read when the caller disabled the cache) filtered with the
/// retained reference kernels — the exact code every fused kernel is
/// pinned to by the differential tests. Both the measurement baseline of
/// the engine speedups and the byte-identity oracle for their results.
ParticleBuffer serial_query_box_reference(const Dataset& ds, const Box3& box) {
  ParticleBuffer out(ds.metadata().schema);
  for (const int fi : ds.metadata().files_intersecting(box)) {
    const ParticleBuffer buf = ds.read_data_file(fi);
    const auto& f = ds.metadata().files[static_cast<std::size_t>(fi)];
    if (box.contains_box(f.bounds))
      out.append_bytes(buf.bytes());
    else
      read_detail::filter_box_reference(buf.bytes(), ds.metadata().schema, box,
                                        out);
  }
  return out;
}

/// Serial reference for `Dataset::query` (same pruning, reference
/// filtering).
ParticleBuffer serial_query_reference(
    const Dataset& ds, const Box3& box,
    std::span<const Dataset::RangeFilter> filters) {
  ParticleBuffer out(ds.metadata().schema);
  for (const int fi : ds.files_matching(box, filters)) {
    const ParticleBuffer buf = ds.read_data_file(fi);
    read_detail::filter_box_ranges_reference(buf.bytes(), ds.metadata().schema,
                                             box, filters, out);
  }
  return out;
}

/// `simd_s <= 0` means no SIMD measurement (scalar dispatch host): the
/// simd fields are omitted so `--compare` skips that gate row instead
/// of comparing garbage.
void readpath_kernel_entry(Json& j, const char* name, std::uint64_t particles,
                           double ref_s, double opt_s, double simd_s = 0) {
  const double mp = static_cast<double>(particles) / 1e6;
  j.open_obj();
  j.field("kernel", std::string(name));
  j.field("particles", particles);
  j.field("reference_mpps", mp / ref_s);
  j.field("optimized_mpps", mp / opt_s);
  j.field("speedup", ref_s / opt_s);
  if (simd_s > 0) {
    j.field("simd_mpps", mp / simd_s);
    j.field("simd_speedup", ref_s / simd_s);
  }
  j.close_obj();
  std::cout << name << "  " << mp / ref_s << " -> " << mp / opt_s
            << " Mparticles/s  (x" << ref_s / opt_s << ")";
  if (simd_s > 0)
    std::cout << "  simd " << mp / simd_s << " (x" << ref_s / simd_s << ")";
  std::cout << "\n";
}

/// Gate fresh readpath results against a committed baseline: kernel
/// speedups (fused vs reference) and end-to-end stage speedups (engine
/// vs the serial reference path).
int compare_readpath(const std::string& baseline_text,
                     const std::string& current_text) {
  const obs::JsonValue base = obs::JsonValue::parse(baseline_text);
  const obs::JsonValue cur = obs::JsonValue::parse(current_text);

  std::vector<GateRow> rows;
  const auto add = [&](std::string metric, const obs::JsonValue* b,
                       const obs::JsonValue* c, const char* key) {
    if (!b || !c) return;
    const obs::JsonValue* bv = b->find(key);
    const obs::JsonValue* cv = c->find(key);
    if (!bv || !cv) return;
    rows.push_back({std::move(metric), bv->as_double(), cv->as_double()});
  };

  if (const obs::JsonValue* ck = cur.find("kernels"))
    for (std::size_t i = 0; i < ck->size(); ++i) {
      const std::string& name = ck->at(i).at("kernel").as_string();
      const obs::JsonValue* b =
          find_entry(base.find("kernels"), "kernel", name);
      add("kernel." + name + ".speedup", b, &ck->at(i), "speedup");
      // Present only when both runs dispatched SIMD (`add` skips a
      // missing key on either side): scalar hosts aren't held to a
      // vector baseline, and a baseline from a scalar host gates
      // nothing it didn't measure.
      add("kernel." + name + ".simd_speedup", b, &ck->at(i), "simd_speedup");
    }
  if (const obs::JsonValue* cs = cur.find("stages"))
    for (std::size_t i = 0; i < cs->size(); ++i) {
      const obs::JsonValue& c = cs->at(i);
      const std::string& name = c.at("stage").as_string();
      const obs::JsonValue* b =
          find_entry(base.find("stages"), "stage", name);
      if (name.rfind("cold", 0) == 0) {
        // A cold stage's ratio divides two device-read times, and host
        // I/O weather moves them by different amounts hour to hour
        // (measured 1.7x-2.3x on an idle box, docs/PERF.md). Gate it at
        // 35% so the gate trips on a real re-pessimization — losing the
        // pool puts it at 1.0x, far below the band — not on a slow disk
        // hour.
        const std::size_t before = rows.size();
        add("stage." + name + ".speedup", b, &c, "speedup");
        if (rows.size() > before) rows.back().tolerance = 0.35;
      } else if (c.find("engine_ms") && c.find("particles") && b &&
                 b->find("engine_ms") && b->find("particles")) {
        // Warm stages are CPU-bound on the engine side but their
        // *speedup* numerator is still a cold serial read riding I/O
        // weather, so gate the engine's own throughput instead. Still
        // an absolute-throughput row, so it gets the wide band: a
        // shared host moves even CPU-bound wall time by ~30%.
        rows.push_back({"stage." + name + ".engine_mpps",
                        b->at("particles").as_double() * 1e-3 /
                            b->at("engine_ms").as_double(),
                        c.at("particles").as_double() * 1e-3 /
                            c.at("engine_ms").as_double(),
                        0.35});
      }
      // distributed_read has neither field pair: reported only.

      // Read amplification regresses *upward*: more particles scanned
      // per particle returned means the planner started touching files
      // the query doesn't need. It is a deterministic byte ratio for a
      // fixed dataset + query — no I/O weather — so the band is tight.
      // Engages only when both documents carry the field (baselines
      // predating the access profiler gate nothing they didn't record).
      const obs::JsonValue* ba = b ? b->find("read_amplification") : nullptr;
      const obs::JsonValue* ca = c.find("read_amplification");
      if (ba && ca && ba->as_double() > 0 && ca->as_double() > 0)
        rows.push_back({"stage." + name + ".read_amplification",
                        ba->as_double(), ca->as_double(), 0.10,
                        /*lower_is_better=*/true});
    }
  // Planner rows: the k-d descent's speedup over the linear bbox scan
  // per synthetic partition count. A ratio of two in-memory timings,
  // so it rides CPU weather on both sides — same wide band as the cold
  // stages. (The absolute ≥10x floor at 10k+ partitions is enforced
  // inside the run itself, baseline or not.)
  if (const obs::JsonValue* cp = cur.find("planning"))
    for (std::size_t i = 0; i < cp->size(); ++i) {
      const std::int64_t n = cp->at(i).at("partitions").as_i64();
      const obs::JsonValue* b =
          find_entry(base.find("planning"), "partitions", n);
      const std::size_t before = rows.size();
      add("planning[" + std::to_string(n) + "].kd_speedup", b, &cp->at(i),
          "kd_speedup");
      if (rows.size() > before) rows.back().tolerance = 0.35;
    }

  return gate_rows(rows,
                   "readpath vs baseline (gate: kernel ratios 15%; cold "
                   "speedups, engine throughput and planning 35%; "
                   "amplification 10% lower-is-better)",
                   "readpath");
}

/// Evict `path`'s pages from the OS page cache so the next read comes
/// from the device — the definition of a *cold* read. Pages must be
/// clean (the dataset is sync()ed once after writing); dirty pages
/// survive the advice and would leave the "cold" stages measuring
/// memcpy speed instead of I/O.
void drop_page_cache(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

int run_readpath(const std::string& json_path, const std::string& compare_path,
                 int reps) {
  std::string baseline_text;
  if (!compare_path.empty()) {
    const std::vector<std::byte> bytes = read_file(compare_path);
    baseline_text.assign(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  }
#if defined(__GLIBC__)
  // The stages below churn ~12 MB read buffers every repetition. Keep
  // such blocks on the heap arena instead of per-allocation mmap/munmap
  // so no loop — serial baseline or engine — pays fresh-page faults a
  // long-lived process would not see. Applied identically to both sides.
  mallopt(M_MMAP_THRESHOLD, 256 << 20);
  mallopt(M_TRIM_THRESHOLD, 256 << 20);
#endif
  const Schema schema = Schema::uintah();
  ReadEngine& eng = ReadEngine::instance();

  Json j;
  j.open_obj();
  j.field("bench", "readpath");
  j.field("generated_by",
          "tools/spio_bench --readpath --json BENCH_readpath.json");
  j.field("schema_bytes_per_particle",
          static_cast<std::uint64_t>(schema.record_size()));
  // The ISA the SIMD rows below were measured at — and a visible flag
  // when a run silently fell back to scalar (SPIO_SIMD, older CPU).
  j.field("simd_level", std::string(simd::level_name(simd::active_level())));

  // -- micro: filter kernels vs their reference loops --
  // The input models what the kernels actually receive: cached file
  // prefixes, streamed in file order by a warm multi-file query. Each
  // data file holds one aggregation partition's particles — the LOD
  // shuffle randomizes order *within* a file, but every record still
  // lies in that file's partition box — so the buffer is a file-order
  // concatenation of 216 per-partition payloads (the 6x6x6 layout the
  // end-to-end stages below read). Box and owner predicates therefore
  // flip at file granularity, not per record, exactly as on the read
  // path. The box keeps about half of it. Reps interleave reference and
  // fused so both see the same machine state.
  j.open_arr("kernels");
  {
    constexpr std::uint64_t kParticles = 1000000;
    constexpr int kCells = 216;
    const Box3 half({0.0, 0.0, 0.0}, {0.5, 1.0, 1.0});
    const PatchDecomposition cells =
        PatchDecomposition::for_ranks(Box3::unit(), kCells);
    ParticleBuffer local(schema);
    local.reserve(kParticles);
    {
      std::uint64_t id = 0;
      for (int c = 0; c < kCells; ++c) {
        const std::uint64_t n = c == kCells - 1
                                    ? kParticles - id
                                    : kParticles / kCells;
        const auto seg =
            workload::uniform(schema, cells.patch(c), n,
                              stream_seed(11, static_cast<std::uint64_t>(c)),
                              id);
        local.append_bytes(seg.bytes());
        id += n;
      }
    }
    const std::vector<Dataset::RangeFilter> filters{
        {schema.index_of("density"), 0, 1000.0, 1100.0}};

    // Built once, outside every timed region — the read path amortizes
    // the mirror build over all warm queries of a cached prefix, so the
    // kernel rows measure the steady state, not the first fetch.
    const bool simd_on = simd::active_level() != simd::Level::kScalar;
    const auto mirror = PositionMirror::build(
        local.bytes(), schema.record_size(), schema.offset(0));

    const auto time_pair = [&](auto&& ref, auto&& opt, double* ref_s,
                               double* opt_s) {
      *ref_s = 1e300;
      *opt_s = 1e300;
      for (int r = 0; r < std::max(reps, 5); ++r) {
        *ref_s = std::min(*ref_s, best_seconds(1, ref));
        *opt_s = std::min(*opt_s, best_seconds(1, opt));
      }
    };
    const auto time_simd = [&](auto&& fn) {
      double s = 1e300;
      for (int r = 0; r < std::max(reps, 5); ++r)
        s = std::min(s, best_seconds(1, fn));
      return s;
    };

    // filter_box: verify byte identity once, then time.
    {
      ParticleBuffer a(schema), b(schema);
      read_detail::filter_box_reference(local.bytes(), schema, half, a);
      read_detail::filter_box(local.bytes(), schema, half, b);
      if (a.bytes().size() != b.bytes().size() ||
          std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()) != 0) {
        std::cerr << "filter_box disagrees with its reference\n";
        return 1;
      }
      double simd_s = 0;
      if (simd_on) {
        ParticleBuffer c(schema);
        std::uint64_t kept = 0;
        if (!simd::filter_box(*mirror, local.bytes(), schema.record_size(),
                              half, c, &kept) ||
            a.bytes().size() != c.bytes().size() ||
            std::memcmp(a.bytes().data(), c.bytes().data(), a.byte_size()) !=
                0) {
          std::cerr << "simd filter_box disagrees with its reference\n";
          return 1;
        }
        simd_s = time_simd([&] {
          ParticleBuffer out(schema);
          std::uint64_t n = 0;
          if (!simd::filter_box(*mirror, local.bytes(), schema.record_size(),
                                half, out, &n) ||
              n == 0)
            std::abort();
        });
      }
      double ref_s, opt_s;
      time_pair(
          [&] {
            ParticleBuffer out(schema);
            if (read_detail::filter_box_reference(local.bytes(), schema, half,
                                                  out) == 0)
              std::abort();
          },
          [&] {
            ParticleBuffer out(schema);
            if (read_detail::filter_box(local.bytes(), schema, half, out) == 0)
              std::abort();
          },
          &ref_s, &opt_s);
      readpath_kernel_entry(j, "filter_box", kParticles, ref_s, opt_s, simd_s);
    }

    // filter_box_ranges: spatial + one attribute predicate.
    {
      ParticleBuffer a(schema), b(schema);
      read_detail::filter_box_ranges_reference(local.bytes(), schema, half,
                                               filters, a);
      read_detail::filter_box_ranges(local.bytes(), schema, half, filters, b);
      if (a.bytes().size() != b.bytes().size() ||
          std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()) != 0) {
        std::cerr << "filter_box_ranges disagrees with its reference\n";
        return 1;
      }
      double simd_s = 0;
      if (simd_on) {
        std::vector<simd::RangePred> preds;
        for (const auto& f : filters) {
          const FieldDesc& fd = schema.fields()[f.field];
          preds.push_back(
              {schema.offset(f.field) + f.component * field_type_size(fd.type),
               fd.type == FieldType::kF64, f.lo, f.hi});
        }
        ParticleBuffer c(schema);
        std::uint64_t kept = 0;
        if (!simd::filter_box_ranges(*mirror, local.bytes(),
                                     schema.record_size(), half, preds, c,
                                     &kept) ||
            a.bytes().size() != c.bytes().size() ||
            std::memcmp(a.bytes().data(), c.bytes().data(), a.byte_size()) !=
                0) {
          std::cerr << "simd filter_box_ranges disagrees with its reference\n";
          return 1;
        }
        simd_s = time_simd([&] {
          ParticleBuffer out(schema);
          std::uint64_t n = 0;
          if (!simd::filter_box_ranges(*mirror, local.bytes(),
                                       schema.record_size(), half, preds, out,
                                       &n))
            std::abort();
        });
      }
      double ref_s, opt_s;
      time_pair(
          [&] {
            ParticleBuffer out(schema);
            if (read_detail::filter_box_ranges_reference(
                    local.bytes(), schema, half, filters, out) == 0)
              std::abort();
          },
          [&] {
            ParticleBuffer out(schema);
            if (read_detail::filter_box_ranges(local.bytes(), schema, half,
                                               filters, out) == 0)
              std::abort();
          },
          &ref_s, &opt_s);
      readpath_kernel_entry(j, "filter_box_ranges", kParticles, ref_s, opt_s,
                            simd_s);
    }

    // bin_by_owner: the distributed_read scatter at 8 reader tiles.
    {
      const PatchDecomposition decomp =
          PatchDecomposition::for_ranks(Box3::unit(), 8);
      const auto bins_of = [&](auto&& kernel) {
        std::vector<ParticleBuffer> bins(8, ParticleBuffer(schema));
        kernel(local.bytes(), schema, decomp, bins);
        return bins;
      };
      const auto a = bins_of(read_detail::bin_by_owner_reference);
      const auto b = bins_of(read_detail::bin_by_owner);
      for (int r = 0; r < 8; ++r) {
        const auto sa = a[static_cast<std::size_t>(r)].bytes();
        const auto sb = b[static_cast<std::size_t>(r)].bytes();
        if (sa.size() != sb.size() ||
            std::memcmp(sa.data(), sb.data(), sa.size()) != 0) {
          std::cerr << "bin_by_owner disagrees with its reference\n";
          return 1;
        }
      }
      double simd_s = 0;
      if (simd_on) {
        const auto simd_bins = [&] {
          std::vector<ParticleBuffer> bins(8, ParticleBuffer(schema));
          if (!simd::bin_by_owner(*mirror, local.bytes(), schema.record_size(),
                                  decomp, bins))
            std::abort();
          return bins;
        };
        const auto c = simd_bins();
        for (int r = 0; r < 8; ++r) {
          const auto sa = a[static_cast<std::size_t>(r)].bytes();
          const auto sc = c[static_cast<std::size_t>(r)].bytes();
          if (sa.size() != sc.size() ||
              std::memcmp(sa.data(), sc.data(), sa.size()) != 0) {
            std::cerr << "simd bin_by_owner disagrees with its reference\n";
            return 1;
          }
        }
        simd_s = time_simd([&] {
          if (simd_bins().empty()) std::abort();
        });
      }
      double ref_s, opt_s;
      time_pair(
          [&] {
            if (bins_of(read_detail::bin_by_owner_reference).empty())
              std::abort();
          },
          [&] {
            if (bins_of(read_detail::bin_by_owner).empty()) std::abort();
          },
          &ref_s, &opt_s);
      readpath_kernel_entry(j, "bin_by_owner", kParticles, ref_s, opt_s,
                            simd_s);
    }
  }
  j.close_arr();

  // -- end-to-end stages on a written dataset --
  // 216 ranks (6x6x6 patches), one partition per patch -> 216 files of
  // ~450 KB, the many-partition-files layout the paper's aggregation
  // targets. The off-grid centered box overlaps every file, fully
  // contains the 64 interior ones (whole-file fast path) and partially
  // overlaps the 152 boundary ones (the fused filter path). Serial cold
  // reads pay the per-file readahead ramp on every one of the 216 files
  // — at ~450 KB the window never even reaches full size — while the
  // engine's pooled reads keep the device queue full instead: the
  // multi-file fan-out the read engine exists for, and the regime where
  // the serial-vs-pooled gap is widest and steadiest (the ratio grows
  // with file count at fixed total bytes; 64 big files measure ~1.6x on
  // raw I/O, 216 small ones ~1.9x).
  constexpr int kRanks = 216;
  constexpr std::uint64_t kPerRank = 3700;
  TempDir scratch("spio-readpath");
  const std::filesystem::path dsdir = scratch.path() / "ds";
  {
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          schema, decomp.patch(comm.rank()), kPerRank,
          stream_seed(21, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      WriterConfig cfg;
      cfg.dir = dsdir;
      cfg.factor = {1, 1, 1};
      write_dataset(comm, decomp, local, cfg);
    });
  }
  // Clustered companion dataset for the range_filter stage: same 216-file
  // layout, but density is spatially banded — file of rank r carries
  // [1000·(r mod 8), 1000·(r mod 8) + 100] — and the per-file field
  // ranges are deliberately left out of the metadata, so the zone-map
  // sidecar is the *only* pruning information the planner has. The
  // filter below selects band 1: 27 of 216 files hold every match, and
  // the stage measures exactly what zone pruning buys. (On the uniform
  // dataset every file's density range spans the filter and nothing can
  // be skipped — amplification was pinned at ~2.9 by construction.)
  const std::filesystem::path cldir = scratch.path() / "clustered";
  {
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      ParticleBuffer local = workload::uniform(
          schema, decomp.patch(comm.rank()), kPerRank,
          stream_seed(23, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      const std::size_t density = schema.index_of("density");
      Xoshiro256 rng(
          stream_seed(29, static_cast<std::uint64_t>(comm.rank())));
      for (std::size_t i = 0; i < local.size(); ++i)
        local.set_f64(i, density, 0,
                      1000.0 * (comm.rank() % 8) + 100.0 * rng.uniform());
      WriterConfig cfg;
      cfg.dir = cldir;
      cfg.factor = {1, 1, 1};
      cfg.write_field_ranges = false;
      write_dataset(comm, decomp, local, cfg);
    });
  }
  ::sync();  // make every data-file page clean so fadvise can evict it
  const Dataset ds = Dataset::open(dsdir);
  const Dataset cds = Dataset::open(cldir);
  const Box3 qbox({0.05, 0.05, 0.05}, {0.95, 0.95, 0.95});
  const std::vector<Dataset::RangeFilter> qfilters{
      {schema.index_of("density"), 0, 1000.0, 1100.0}};
  const auto drop_dataset_pages = [&] {
    for (const auto& f : ds.metadata().files)
      drop_page_cache(dsdir / f.file_name());
  };
  const auto drop_clustered_pages = [&] {
    for (const auto& f : cds.metadata().files)
      drop_page_cache(cldir / f.file_name());
  };

  const auto bytes_equal = [](const ParticleBuffer& a,
                              const ParticleBuffer& b) {
    return a.byte_size() == b.byte_size() &&
           std::memcmp(a.bytes().data(), b.bytes().data(), a.byte_size()) == 0;
  };
  const auto stage_entry = [&](const char* name, double serial_s,
                               double engine_s, std::uint64_t particles,
                               const ReadStats& rs) {
    j.open_obj();
    j.field("stage", std::string(name));
    j.field("serial_ms", serial_s * 1e3);
    j.field("engine_ms", engine_s * 1e3);
    j.field("speedup", serial_s / engine_s);
    j.field("particles", particles);
    j.field("files_opened", static_cast<std::uint64_t>(rs.files_opened));
    j.field("cache_hits", rs.cache_hits);
    // Particles scanned per particle returned — deterministic for a
    // fixed dataset + query, so `--compare` holds it to a tight
    // lower-is-better band (see compare_readpath).
    j.field("read_amplification", rs.read_amplification());
    // Planner skip counters: candidate files dropped without a read
    // (field-range or zone pruning) and LOD-tail bytes the zone maps
    // shaved off surviving files.
    j.field("files_skipped", static_cast<std::uint64_t>(rs.files_skipped));
    j.field("lod_bytes_skipped", rs.lod_bytes_skipped);
    j.close_obj();
    std::cout << name << "  " << serial_s * 1e3 << " -> " << engine_s * 1e3
              << " ms  (x" << serial_s / engine_s << ", amplification "
              << rs.read_amplification() << ", " << rs.files_skipped
              << " files skipped)\n";
  };

  j.field("engine_threads", static_cast<std::uint64_t>(16));
  j.open_arr("stages");
  // Two engine states, toggled per repetition:
  //  * serial baseline — no cache, no pool, reference kernels: the
  //    pre-engine read path exactly. Every serial repetition starts with
  //    the dataset evicted from the page cache (outside the clock): the
  //    baseline a cold engine query is judged against must itself read
  //    from the device, not replay yesterday's pages.
  //  * engine — a 16-thread pool (cold per-file reads overlap 16 deep in
  //    the device queue) and a cache big enough to hold the whole
  //    dataset. Both fixed here — not from
  //    SPIO_READ_THREADS/SPIO_READ_CACHE — so the committed baseline is
  //    reproducible.
  constexpr int kEngineThreads = 16;
  const auto serial_state = [&] {
    eng.set_concurrency(1);
    eng.set_cache_budget(0);
  };
  const auto engine_state = [&] {
    eng.set_concurrency(kEngineThreads);
    eng.set_cache_budget(512ull << 20);
  };

  ParticleBuffer ref_box(schema);
  double serial_box_s = 1e300;

  // cold box query: page cache and buffer cache both emptied before
  // every rep (outside the clock — eviction is maintenance, not query
  // time). What remains is the real cold path: concurrent device reads
  // feeding the fused filters. Serial and engine reps are interleaved —
  // one of each per iteration, like the hotpath kernels — so a shift in
  // host I/O weather during the run moves both sides of the ratio
  // instead of skewing whichever block it lands on.
  {
    ParticleBuffer out(schema);
    ReadStats rs;
    double s = 1e300;
    for (int r = 0; r < reps; ++r) {
      serial_state();
      drop_dataset_pages();
      auto t0 = std::chrono::steady_clock::now();
      ref_box = serial_query_box_reference(ds, qbox);
      serial_box_s = std::min(serial_box_s, seconds_since(t0));

      engine_state();
      eng.clear_cache();
      drop_dataset_pages();
      rs = ReadStats{};
      t0 = std::chrono::steady_clock::now();
      out = ds.query_box(qbox, -1, 1, &rs);
      s = std::min(s, seconds_since(t0));
    }
    if (!bytes_equal(out, ref_box)) {
      std::cerr << "cold query_box differs from the serial reference\n";
      return 1;
    }
    stage_entry("cold_box", serial_box_s, s, out.size(), rs);
  }

  // Serial range-filter baseline on the clustered dataset. Without
  // field ranges in the metadata the reference path cannot prune a
  // single file: it reads all 216 and filters exactly — precisely the
  // pre-zone-map behaviour the stage's speedup is measured against.
  serial_state();
  ParticleBuffer ref_rq(schema);
  double serial_rq_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    drop_clustered_pages();
    const auto t0 = std::chrono::steady_clock::now();
    ref_rq = serial_query_reference(cds, qbox, qfilters);
    serial_rq_s = std::min(serial_rq_s, seconds_since(t0));
  }
  engine_state();

  // warm cached query: every prefix served from the buffer cache.
  {
    (void)ds.query_box(qbox);  // prime
    ParticleBuffer out(schema);
    ReadStats rs;
    const double s = best_seconds(reps, [&] {
      rs = ReadStats{};
      out = ds.query_box(qbox, -1, 1, &rs);
    });
    if (!bytes_equal(out, ref_box)) {
      std::cerr << "warm query_box differs from the serial reference\n";
      return 1;
    }
    if (rs.files_opened != 0 || rs.cache_hits == 0) {
      std::cerr << "warm query_box still opened files\n";
      return 1;
    }
    stage_entry("warm_box", serial_box_s, s, out.size(), rs);
  }

  // range-filter query (spatial + attribute) on the clustered dataset,
  // warm cache: the planner's zone maps drop the 189 off-band files
  // before any read.
  {
    (void)cds.query(qbox, qfilters);  // prime the surviving prefixes
    ParticleBuffer out(schema);
    ReadStats rs;
    const double s = best_seconds(reps, [&] {
      rs = ReadStats{};
      out = cds.query(qbox, qfilters, -1, 1, &rs);
    });
    if (!bytes_equal(out, ref_rq)) {
      std::cerr << "query differs from the serial reference\n";
      return 1;
    }
    stage_entry("range_filter", serial_rq_s, s, out.size(), rs);
  }

  // 8-rank distributed_read of the 64-file dataset (tile exchange end
  // to end, warm cache).
  {
    constexpr int kReadRanks = 8;
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kReadRanks);
    std::atomic<std::uint64_t> particles{0};
    const double s = best_seconds(reps, [&] {
      particles = 0;
      simmpi::run(kReadRanks, [&](simmpi::Comm& comm) {
        const ParticleBuffer mine = distributed_read(comm, decomp, dsdir);
        particles += mine.size();
      });
    });
    j.open_obj();
    j.field("stage", std::string("distributed_read8"));
    j.field("wall_ms", s * 1e3);
    j.field("particles", particles.load());
    j.close_obj();
    std::cout << "distributed_read8  " << s * 1e3 << " ms ("
              << particles.load() << " particles)\n";
  }
  j.close_arr();

  // -- planning: k-d descent vs linear bbox scan, synthetic partitions --
  // Pure planning cost (no I/O): intersect a batch of small query boxes
  // against N partition bounds, once through the k-d tree and once by
  // scanning every box — the pre-tree planner. At 216 partitions (the
  // dataset above) the two are close; the tree's O(log N + k) descent
  // pays off as N grows, and 10k+ partitions is where real simulation
  // checkpoints live. The 10k and 1M rows carry a hard ≥10x floor in
  // addition to the `--compare` band: losing the tree (a planner
  // regression to linear) puts them at 1.0x, far below either.
  j.open_arr("planning");
  {
    Xoshiro256 prng(stream_seed(31, 0));
    constexpr int kQueries = 64;
    for (const int n : {216, 10000, 1000000}) {
      const PatchDecomposition grid =
          PatchDecomposition::for_ranks(Box3::unit(), n);
      std::vector<Box3> boxes;
      boxes.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) boxes.push_back(grid.patch(i));
      const auto b0 = std::chrono::steady_clock::now();
      const BoxKdTree tree = BoxKdTree::build(boxes);
      const double build_s = seconds_since(b0);
      // A batch of ~5%-per-axis query boxes scattered over the domain —
      // the "read a small region" plan the paper's visualization reads
      // issue. The same batch runs through both planners.
      std::vector<Box3> queries;
      for (int q = 0; q < kQueries; ++q) {
        Vec3d lo{prng.uniform(0.0, 0.95), prng.uniform(0.0, 0.95),
                 prng.uniform(0.0, 0.95)};
        queries.push_back(Box3(lo, {lo.x + 0.05, lo.y + 0.05, lo.z + 0.05}));
      }
      std::uint64_t candidates = 0;
      for (const Box3& q : queries) candidates += tree.query(q).size();
      const double kd_s = best_seconds(std::max(reps, 5), [&] {
        std::size_t sink = 0;
        for (const Box3& q : queries) sink += tree.query(q).size();
        if (sink == 0) std::abort();
      });
      const double lin_s = best_seconds(std::max(reps, 5), [&] {
        std::size_t sink = 0;
        for (const Box3& q : queries)
          for (const Box3& b : boxes)
            if (b.overlaps(q)) ++sink;
        if (sink == 0) std::abort();
      });
      const double kd_us = kd_s / kQueries * 1e6;
      const double lin_us = lin_s / kQueries * 1e6;
      const double frac_skipped =
          1.0 - static_cast<double>(candidates) /
                    (static_cast<double>(kQueries) * static_cast<double>(n));
      j.open_obj();
      j.field("partitions", n);
      j.field("queries", static_cast<std::uint64_t>(kQueries));
      j.field("build_ms", build_s * 1e3);
      j.field("kd_plan_us", kd_us);
      j.field("linear_plan_us", lin_us);
      j.field("kd_speedup", lin_us / kd_us);
      j.field("files_skipped_fraction", frac_skipped);
      j.close_obj();
      std::cout << "planning[" << n << "]  " << lin_us << " -> " << kd_us
                << " us/plan  (x" << lin_us / kd_us << ", "
                << frac_skipped * 100 << "% of files skipped)\n";
      if (n >= 10000 && lin_us / kd_us < 10.0) {
        std::cerr << "planning: k-d descent under the 10x floor at " << n
                  << " partitions\n";
        return 1;
      }
    }
  }
  j.close_arr();

  const ReadCacheStats cs = eng.cache_stats();
  j.open_obj("cache");
  j.field("hits", cs.hits);
  j.field("misses", cs.misses);
  j.field("evictions", cs.evictions);
  j.field("bytes_evicted", cs.bytes_evicted);
  j.field("bytes_held", cs.bytes_held);
  j.close_obj();
  j.close_obj();

  if (!json_path.empty()) write_json(json_path, j.str());
  if (!compare_path.empty()) return compare_readpath(baseline_text, j.str());
  return 0;
}

// ---- servepath mode ----

/// One entry in the hot query set: a ready-to-run query function, its
/// coalescing key, and the expected (direct-query) result bytes.
struct HotQuery {
  std::string key;
  QueryService::QueryFn fn;
  const ParticleBuffer* want = nullptr;
};

/// Completion record: when (relative to window start) and how long.
struct ServeSample {
  double done_s;
  double latency_ms;
};

struct ServeWindow {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t queries = 0;
  /// Server-side latency percentiles over the measure interval, read
  /// from the service's windowed `service.latency_us` histogram — what
  /// an operator sees in `stats.spio.jsonl`, vs. the client-side
  /// numbers above measured around `svc.run`.
  double server_p50_ms = 0;
  double server_p99_ms = 0;
  std::uint64_t server_queries = 0;
  /// Spatial amplification over the whole window (warmup included),
  /// from the access profiler's totals: disk bytes per surviving byte
  /// (~0 once the cache is warm — the serve steady state) and scanned
  /// bytes per surviving byte (cache-independent, the planner's
  /// overfetch under this Zipf mix).
  double read_amplification = 0;
  double scan_amplification = 0;
  ServiceStats stats;
};

/// Zipf(s) CDF over ranks 1..n: rank r gets weight 1/r^s. The hot-spot
/// shape of real query traffic — a few regions of the domain (the
/// interesting physics) absorb most of the queries.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double sum = 0;
  for (std::size_t r = 0; r < n; ++r) sum += 1.0 / std::pow(r + 1.0, s);
  double acc = 0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += (1.0 / std::pow(r + 1.0, s)) / sum;
    cdf[r] = acc;
  }
  cdf[n - 1] = 1.0;  // guard against rounding
  return cdf;
}

std::size_t zipf_pick(const std::vector<double>& cdf, double u) {
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

/// One closed-loop window: `n_clients` threads each keep exactly one
/// query outstanding against a fresh service (4 workers, deep queue).
/// Samples completing inside the measure interval (after warmup) yield
/// QPS and latency percentiles. Each client byte-checks its first
/// completion of every hot query against the direct-query result.
ServeWindow run_serve_window(const std::vector<HotQuery>& hot,
                             const std::vector<double>& cdf, int n_clients,
                             std::atomic<int>* mismatches) {
  constexpr double kWarmupS = 0.3;
  constexpr double kMeasureS = 1.2;
  const obs::AccessProfiler::Totals prof0 =
      obs::AccessProfiler::instance().totals();
  QueryService svc(ServiceConfig{4, 1024, {}});
  std::atomic<bool> stop{false};
  std::vector<std::vector<ServeSample>> samples(
      static_cast<std::size_t>(n_clients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < n_clients; ++c)
    clients.emplace_back([&, c] {
      Xoshiro256 rng(stream_seed(9000 + static_cast<std::uint64_t>(n_clients),
                                 static_cast<std::uint64_t>(c)));
      std::vector<bool> checked(hot.size(), false);
      auto& mine = samples[static_cast<std::size_t>(c)];
      mine.reserve(4096);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t i = zipf_pick(cdf, rng.uniform());
        const HotQuery& q = hot[i];
        QueryService::Options opt;
        opt.coalesce_key = q.key;
        const auto q0 = std::chrono::steady_clock::now();
        const QueryService::Result got = svc.run(q.fn, opt);
        const auto q1 = std::chrono::steady_clock::now();
        mine.push_back(
            {std::chrono::duration<double>(q1 - t0).count(),
             std::chrono::duration<double, std::milli>(q1 - q0).count()});
        if (!checked[i]) {
          checked[i] = true;
          if (got->byte_size() != q.want->byte_size() ||
              std::memcmp(got->bytes().data(), q.want->bytes().data(),
                          got->byte_size()) != 0)
            mismatches->fetch_add(1);
        }
      }
    });
  // Scope the server-side histograms to the measure interval: drop the
  // warmup's samples, then read the merged window after the clients
  // stop. The windows are process-wide, so one serve window runs at a
  // time (true here: windows run sequentially within one bench).
  auto& latency_hist =
      obs::MetricsRegistry::global().windowed("service.latency_us");
  std::this_thread::sleep_for(std::chrono::duration<double>(kWarmupS));
  latency_hist.reset();
  std::this_thread::sleep_for(std::chrono::duration<double>(kMeasureS));
  stop.store(true);
  for (auto& t : clients) t.join();
  ServeWindow w;
  w.stats = svc.stats();
  svc.shutdown();
  const obs::AccessProfiler::Totals prof1 =
      obs::AccessProfiler::instance().totals();
  const std::uint64_t used = prof1.bytes_used - prof0.bytes_used;
  if (used > 0) {
    w.read_amplification =
        static_cast<double>(prof1.bytes_fetched - prof0.bytes_fetched) /
        static_cast<double>(used);
    w.scan_amplification =
        static_cast<double>(prof1.bytes_scanned - prof0.bytes_scanned) /
        static_cast<double>(used);
  }
  const auto server = latency_hist.merged();
  w.server_queries = server.count;
  w.server_p50_ms = static_cast<double>(server.p50) / 1e3;
  w.server_p99_ms = static_cast<double>(server.p99) / 1e3;

  std::vector<double> lat;
  for (const auto& v : samples)
    for (const ServeSample& s : v)
      if (s.done_s >= kWarmupS && s.done_s < kWarmupS + kMeasureS)
        lat.push_back(s.latency_ms);
  std::sort(lat.begin(), lat.end());
  w.queries = lat.size();
  w.qps = static_cast<double>(lat.size()) / kMeasureS;
  if (!lat.empty()) {
    w.p50_ms = lat[lat.size() / 2];
    w.p99_ms = lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
  }
  return w;
}

/// Gate fresh servepath results against a committed baseline: QPS per
/// client count and the 16-client scaling factor. Wide tolerance —
/// closed-loop QPS rides scheduler and I/O weather much harder than the
/// CPU-bound kernel metrics.
int compare_servepath(const std::string& baseline_text,
                      const std::string& current_text) {
  const obs::JsonValue base = obs::JsonValue::parse(baseline_text);
  const obs::JsonValue cur = obs::JsonValue::parse(current_text);
  constexpr double kServeTolerance = 0.35;

  // Server-side p99 is lower-is-better and rides the same closed-loop
  // weather as QPS, both directions; the wide band still catches a real
  // tail-latency regression (a doubling).
  constexpr double kServeLatencyTolerance = 1.0;

  std::vector<GateRow> rows;
  if (const obs::JsonValue* cc = cur.find("clients"))
    for (std::size_t i = 0; i < cc->size(); ++i) {
      const std::int64_t n = cc->at(i).at("clients").as_i64();
      const obs::JsonValue* b = find_entry(base.find("clients"), "clients", n);
      const obs::JsonValue* bq = b ? b->find("qps") : nullptr;
      const obs::JsonValue* cq = cc->at(i).find("qps");
      if (bq && cq)
        rows.push_back({"serve[" + std::to_string(n) + "c].qps",
                        bq->as_double(), cq->as_double(), kServeTolerance});
      // Optional fields: baselines predating server-side telemetry (and
      // runs compared against them) skip these rows entirely.
      const obs::JsonValue* bp = b ? b->find("server_p99_ms") : nullptr;
      const obs::JsonValue* cp = cc->at(i).find("server_p99_ms");
      if (bp && cp && bp->as_double() > 0 && cp->as_double() > 0)
        rows.push_back({"serve[" + std::to_string(n) + "c].server_p99_ms",
                        bp->as_double(), cp->as_double(),
                        kServeLatencyTolerance, /*lower_is_better=*/true});
      // Scan amplification (bytes scanned per byte surviving filters,
      // from the access profiler) regresses upward; the ratio is a
      // property of the Zipf query mix, not the scheduler, so a
      // moderate band suffices. Baselines without the field (and the
      // warm-cache read_amplification, which sits at ~0) gate nothing.
      const obs::JsonValue* bsc = b ? b->find("scan_amplification") : nullptr;
      const obs::JsonValue* csc = cc->at(i).find("scan_amplification");
      if (bsc && csc && bsc->as_double() > 0 && csc->as_double() > 0)
        rows.push_back({"serve[" + std::to_string(n) + "c].scan_amplification",
                        bsc->as_double(), csc->as_double(), 0.25,
                        /*lower_is_better=*/true});
      const obs::JsonValue* bra = b ? b->find("read_amplification") : nullptr;
      const obs::JsonValue* cra = cc->at(i).find("read_amplification");
      if (bra && cra && bra->as_double() > 0 && cra->as_double() > 0)
        rows.push_back({"serve[" + std::to_string(n) + "c].read_amplification",
                        bra->as_double(), cra->as_double(), 0.25,
                        /*lower_is_better=*/true});
    }
  const obs::JsonValue* bs = base.find("scaling_16c");
  const obs::JsonValue* cs = cur.find("scaling_16c");
  if (bs && cs)
    rows.push_back(
        {"scaling_16c", bs->as_double(), cs->as_double(), kServeTolerance});

  return gate_rows(rows,
                   "servepath vs baseline (gate: >35% regression fails; "
                   "closed-loop QPS rides scheduler weather)",
                   "servepath");
}

int run_servepath(const std::string& json_path, const std::string& compare_path,
                  int reps) {
  std::string baseline_text;
  if (!compare_path.empty()) {
    const std::vector<std::byte> bytes = read_file(compare_path);
    baseline_text.assign(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  }
#if defined(__GLIBC__)
  // Same arena policy as readpath: query results churn MB-sized buffers
  // every completion; keep them off the mmap path.
  mallopt(M_MMAP_THRESHOLD, 256 << 20);
  mallopt(M_TRIM_THRESHOLD, 256 << 20);
#endif
  const Schema schema = Schema::uintah();
  ReadEngine& eng = ReadEngine::instance();

  // The readpath dataset: 216 files (6x6x6 patches, one partition per
  // patch), the many-partition-files layout a query service fronts.
  constexpr int kRanks = 216;
  constexpr std::uint64_t kPerRank = 3700;
  TempDir scratch("spio-servepath");
  const std::filesystem::path dsdir = scratch.path() / "ds";
  {
    const PatchDecomposition decomp =
        PatchDecomposition::for_ranks(Box3::unit(), kRanks);
    simmpi::run(kRanks, [&](simmpi::Comm& comm) {
      const auto local = workload::uniform(
          schema, decomp.patch(comm.rank()), kPerRank,
          stream_seed(21, static_cast<std::uint64_t>(comm.rank())),
          static_cast<std::uint64_t>(comm.rank()) * kPerRank);
      WriterConfig cfg;
      cfg.dir = dsdir;
      cfg.factor = {1, 1, 1};
      write_dataset(comm, decomp, local, cfg);
    });
  }
  const Dataset ds = Dataset::open(dsdir);

  // Serving state: warm cache (the steady state of a query service; the
  // cold ramp is readpath's subject), fixed engine shape for a
  // reproducible committed baseline.
  eng.set_concurrency(16);
  eng.set_cache_budget(512ull << 20);
  eng.clear_cache();

  // The hot query set: a Zipf(3.0) spot over 8 mixed queries — 5 box, 2
  // LOD (coarse levels only), 1 range filter — each over a ~0.3-wide
  // sub-box, i.e. a handful of the 216 files. The skew is the point:
  // real exploratory traffic hammers the few regions where the physics
  // is, and the service turns that overlap into coalesced executions.
  constexpr double kZipfS = 3.0;
  const std::vector<Dataset::RangeFilter> dens{
      {schema.index_of("density"), 0, 1000.0, 1050.0}};
  struct HotSpec {
    const char* key;
    Box3 box;
    int levels;     // -1 = all
    bool filtered;  // apply `dens`
  };
  const std::vector<HotSpec> specs{
      {"box-a", Box3({0.05, 0.05, 0.05}, {0.35, 0.35, 0.35}), -1, false},
      {"box-b", Box3({0.60, 0.60, 0.60}, {0.90, 0.90, 0.90}), -1, false},
      {"box-c", Box3({0.05, 0.60, 0.05}, {0.35, 0.90, 0.35}), -1, false},
      {"box-d", Box3({0.60, 0.05, 0.60}, {0.90, 0.35, 0.90}), -1, false},
      {"box-e", Box3({0.35, 0.35, 0.35}, {0.65, 0.65, 0.65}), -1, false},
      {"lod-a", Box3({0.05, 0.05, 0.60}, {0.35, 0.35, 0.90}), 2, false},
      {"lod-b", Box3({0.60, 0.60, 0.05}, {0.90, 0.90, 0.35}), 2, false},
      {"rng-a", Box3({0.20, 0.20, 0.20}, {0.50, 0.50, 0.50}), -1, true},
  };
  std::vector<HotQuery> hot;
  std::vector<std::unique_ptr<ParticleBuffer>> wants;
  for (const HotSpec& s : specs) {
    HotQuery q;
    q.key = s.key;
    if (s.filtered)
      q.fn = [&ds, box = s.box, &dens] { return ds.query(box, dens); };
    else
      q.fn = [&ds, box = s.box, levels = s.levels] {
        return ds.query_box(box, levels);
      };
    // Direct-query oracle (and cache prime): the service must hand back
    // exactly these bytes for every client, coalesced or not.
    wants.push_back(std::make_unique<ParticleBuffer>(q.fn()));
    q.want = wants.back().get();
    hot.push_back(std::move(q));
  }
  const std::vector<double> cdf = zipf_cdf(hot.size(), kZipfS);

  Json j;
  j.open_obj();
  j.field("bench", "servepath");
  j.field("generated_by", "tools/spio_bench --serve --json BENCH_servepath.json");
  j.field("dataset_files",
          static_cast<std::uint64_t>(ds.metadata().files.size()));
  j.field("workers", 4);
  j.field("queue_depth", 1024);
  j.field("hot_queries", static_cast<std::uint64_t>(hot.size()));
  j.field("zipf_s", kZipfS);

  std::atomic<int> mismatches{0};
  double qps1 = 0, qps16 = 0;
  j.open_arr("clients");
  for (const int n : {1, 4, 16}) {
    ServeWindow best;
    for (int r = 0; r < reps; ++r) {
      const ServeWindow w = run_serve_window(hot, cdf, n, &mismatches);
      if (w.qps > best.qps) best = w;
    }
    j.open_obj();
    j.field("clients", n);
    j.field("qps", best.qps);
    j.field("p50_ms", best.p50_ms);
    j.field("p99_ms", best.p99_ms);
    j.field("queries", best.queries);
    j.field("server_p50_ms", best.server_p50_ms);
    j.field("server_p99_ms", best.server_p99_ms);
    j.field("server_queries", best.server_queries);
    j.field("accepted", best.stats.accepted);
    j.field("coalesced", best.stats.coalesced);
    j.field("rejected", best.stats.rejected);
    j.field("read_amplification", best.read_amplification);
    j.field("scan_amplification", best.scan_amplification);
    j.close_obj();
    std::cout << n << " client(s): " << best.qps << " qps  p50 "
              << best.p50_ms << " ms  p99 " << best.p99_ms
              << " ms  (server-side p50 " << best.server_p50_ms << " ms  p99 "
              << best.server_p99_ms << " ms; " << best.stats.coalesced
              << " of " << best.stats.accepted << " coalesced; scan amp "
              << best.scan_amplification << ")\n";
    if (n == 1) qps1 = best.qps;
    if (n == 16) qps16 = best.qps;
  }
  j.close_arr();
  const double scaling = qps1 > 0 ? qps16 / qps1 : 0;
  j.field("scaling_16c", scaling);
  j.close_obj();
  std::cout << "scaling_16c: x" << scaling << "\n";

  if (mismatches.load() != 0) {
    std::cerr << "serve: " << mismatches.load()
              << " result(s) differ from the direct query\n";
    return 1;
  }
  if (!json_path.empty()) write_json(json_path, j.str());
  if (!compare_path.empty()) return compare_servepath(baseline_text, j.str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = 16;
  std::uint64_t particles = 20000;
  int reps = 3;
  std::filesystem::path base;
  std::string json_path;
  std::string compare_path;
  std::filesystem::path trace_path;
  std::filesystem::path postmortem_dir;
  bool hotpath = false;
  bool readpath = false;
  bool serve = false;
  std::vector<PartitionFactor> factors = {
      {1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}, {4, 2, 2}};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks") ranks = std::atoi(next());
    else if (arg == "--particles") particles = std::strtoull(next(), nullptr, 10);
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--dir") base = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--hotpath") hotpath = true;
    else if (arg == "--readpath") readpath = true;
    else if (arg == "--serve") serve = true;
    else if (arg == "--compare") compare_path = next();
    else if (arg == "--dump-postmortem") postmortem_dir = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--factors") {
      factors.clear();
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        PartitionFactor f;
        if (!parse_factor(tok, &f)) {
          std::cerr << "bad factor '" << tok << "'\n";
          return 2;
        }
        factors.push_back(f);
      }
    } else {
      std::cerr << "usage: spio_bench [--ranks N] [--particles P] "
                   "[--reps R] [--dir path] [--factors f1,f2,...] "
                   "[--json FILE] [--hotpath] [--readpath] [--serve] "
                   "[--compare FILE] "
                   "[--dump-postmortem DIR] [--trace FILE]\n";
      return 2;
    }
  }
  if (ranks < 1 || reps < 1 || factors.empty()) {
    std::cerr << "invalid parameters\n";
    return 2;
  }

  obs::init_from_env();  // honor SPIO_TRACE / SPIO_LOG like the tests do
  if (!trace_path.empty()) obs::enable();
  const auto flush_trace = [&] {
    if (trace_path.empty()) return;
    obs::Tracer::instance().write_chrome_trace(trace_path);
    std::cout << "trace written to " << trace_path.string() << "\n";
  };
  // `--dump-postmortem DIR`: write a postmortem bundle from the live
  // flight recorder after the run. Not a failure — a smoke artifact so
  // CI can validate the black-box format against a real pipeline run.
  const auto dump_postmortem = [&] {
    if (postmortem_dir.empty()) return;
    obs::PostmortemInfo info;
    info.reason = "benchmark smoke bundle (not a failure)";
    info.phase = "bench";
    if (obs::save_postmortem(postmortem_dir, info))
      std::cout << "wrote "
                << (postmortem_dir / obs::kPostmortemFile).string() << "\n";
    else
      std::cerr << "cannot write postmortem bundle to '"
                << postmortem_dir.string() << "'\n";
  };

  if (!compare_path.empty() && !hotpath && !readpath && !serve) {
    std::cerr << "--compare requires --hotpath, --readpath or --serve\n";
    return 2;
  }
  if (static_cast<int>(hotpath) + static_cast<int>(readpath) +
          static_cast<int>(serve) >
      1) {
    std::cerr << "--hotpath, --readpath and --serve are separate runs\n";
    return 2;
  }
  if (hotpath || readpath || serve) {
    const int rc = hotpath   ? run_hotpath(json_path, compare_path, reps)
                   : readpath ? run_readpath(json_path, compare_path, reps)
                             : run_servepath(json_path, compare_path, reps);
    dump_postmortem();
    flush_trace();
    return rc;
  }

  TempDir scratch("spio-bench");
  const std::filesystem::path work = base.empty() ? scratch.path() : base;
  const PatchDecomposition decomp =
      PatchDecomposition::for_ranks(Box3::unit(), ranks);
  const std::uint64_t total_bytes = static_cast<std::uint64_t>(ranks) *
                                    particles *
                                    Schema::uintah().record_size();

  std::cout << "spio_bench: " << ranks << " ranks x " << particles
            << " particles (" << format_bytes(total_bytes)
            << " per write), best of " << reps << " reps\n\n";

  Json j;
  j.open_obj();
  j.field("bench", "write_sweep");
  j.field("ranks", ranks);
  j.field("particles_per_rank", particles);
  j.field("total_bytes", total_bytes);
  j.open_arr("write");

  Table wt("write sweep", {"factor", "files", "write (ms)", "GB/s",
                           "agg %", "shuffle %", "file I/O %"});
  PartitionFactor best{1, 1, 1};
  double best_ms = 1e300;
  for (const PartitionFactor f : factors) {
    if (file_count(decomp.grid(), f) > ranks) continue;
    double best_rep = 1e300;
    WriteStats job{};
    for (int rep = 0; rep < reps; ++rep) {
      WriteStats rep_job{};
      std::mutex mu;
      const auto t0 = std::chrono::steady_clock::now();
      simmpi::run(ranks, [&](simmpi::Comm& comm) {
        const auto local = workload::uniform(
            Schema::uintah(), decomp.patch(comm.rank()), particles,
            stream_seed(1000 + rep, static_cast<std::uint64_t>(comm.rank())),
            static_cast<std::uint64_t>(comm.rank()) * particles);
        WriterConfig cfg;
        cfg.dir = work / ("w_" + f.to_string() + "_" + std::to_string(rep));
        cfg.factor = f;
        const WriteStats s = write_dataset(comm, decomp, local, cfg);
        std::lock_guard lk(mu);
        rep_job = WriteStats::max_over(rep_job, s);
      });
      const double ms = seconds_since(t0) * 1e3;
      if (ms < best_rep) {
        best_rep = ms;
        job = rep_job;
      }
    }
    const double t = job.total_seconds();
    wt.row()
        .add(f.to_string())
        .add_int(job.files_written)
        .add_double(best_rep, 1)
        .add_double(throughput_gbs(total_bytes, best_rep / 1e3), 3)
        .add_double(100.0 * (job.meta_exchange_seconds +
                             job.particle_exchange_seconds) /
                        t,
                    1)
        .add_double(100.0 * job.reorder_seconds / t, 1)
        .add_double(100.0 * job.file_io_seconds / t, 1);
    j.open_obj();
    j.field("factor", f.to_string());
    j.field("files", job.files_written);
    j.field("write_ms", best_rep);
    j.field("gbs", throughput_gbs(total_bytes, best_rep / 1e3));
    j.field("meta_exchange_s", job.meta_exchange_seconds);
    j.field("particle_exchange_s", job.particle_exchange_seconds);
    j.field("reorder_s", job.reorder_seconds);
    j.field("file_io_s", job.file_io_seconds);
    j.field("metadata_io_s", job.metadata_io_seconds);
    j.close_obj();
    if (best_rep < best_ms) {
      best_ms = best_rep;
      best = f;
    }
  }
  wt.print(std::cout);
  j.close_arr();

  // Read strong scaling on the best configuration's first rep.
  const auto dataset = work / ("w_" + best.to_string() + "_0");
  Table rt("read strong scaling on " + best.to_string() + " dataset",
           {"readers", "read (ms)", "files/reader", "GB/s"});
  j.field("best_factor", best.to_string());
  j.open_arr("read");
  for (int readers = 1; readers <= ranks; readers *= 2) {
    double best_rep = 1e300;
    std::uint64_t files = 0;
    for (int rep = 0; rep < reps; ++rep) {
      std::atomic<std::uint64_t> opened{0};
      const auto t0 = std::chrono::steady_clock::now();
      simmpi::run(readers, [&](simmpi::Comm& comm) {
        const Dataset ds = Dataset::open(dataset);
        ReadStats rs;
        ds.query_box(
            reader_tile(ds.metadata().domain, comm.rank(), comm.size()), -1,
            comm.size(), &rs);
        opened += static_cast<std::uint64_t>(rs.files_opened);
      });
      const double ms = seconds_since(t0) * 1e3;
      if (ms < best_rep) {
        best_rep = ms;
        files = opened;
      }
    }
    rt.row()
        .add_int(readers)
        .add_double(best_rep, 1)
        .add_double(static_cast<double>(files) / readers, 1)
        .add_double(throughput_gbs(total_bytes, best_rep / 1e3), 3);
    j.open_obj();
    j.field("readers", readers);
    j.field("read_ms", best_rep);
    j.field("files_per_reader", static_cast<double>(files) / readers);
    j.field("gbs", throughput_gbs(total_bytes, best_rep / 1e3));
    j.close_obj();
  }
  rt.print(std::cout);
  j.close_arr();
  j.close_obj();
  if (!json_path.empty()) write_json(json_path, j.str());
  dump_postmortem();
  flush_trace();
  return 0;
}
